package cq

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"chameleon/internal/mpi"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
	"chameleon/internal/trace"
)

// mkTrace builds a small deterministic trace: a loop of send/recv plus
// one collective. iters shifts per-rank dynamic event counts by 2 per
// iteration; seed perturbs the call-site signatures.
func mkTrace(p int, benchmark string, iters uint64, seed uint64) *trace.File {
	all := make([]int, p)
	for i := range all {
		all[i] = i
	}
	ranks := ranklist.FromRanks(all)
	send := trace.Event{Op: mpi.OpSend, Stack: sig.Stack(sig.Mix(seed*100 + 1)), Dest: trace.Relative(1), Tag: 1, Bytes: 256}
	recv := trace.Event{Op: mpi.OpRecv, Stack: sig.Stack(sig.Mix(seed*100 + 2)), Src: trace.Relative(-1), Tag: 1, Bytes: 256}
	coll := trace.Event{Op: mpi.OpAllreduce, Stack: sig.Stack(sig.Mix(seed*100 + 3)), Bytes: 8}
	return &trace.File{
		P:         p,
		Benchmark: benchmark,
		Tracer:    "chameleon",
		Nodes: []*trace.Node{
			trace.NewLoop(iters, []*trace.Node{
				trace.NewLeaf(send, ranks, 1000),
				trace.NewLeaf(recv, ranks, 0),
			}),
			trace.NewLeaf(coll, ranks, 500),
		},
	}
}

// fixedNow is a deterministic test clock.
func fixedNow() time.Time { return time.UnixMilli(1_700_000_000_000) }

// stubLookup serves goldens from a map keyed by reference.
func stubLookup(m map[string]*trace.File) Lookup {
	return func(tenant, id string) (*trace.File, string, error) {
		f, ok := m[id]
		if !ok {
			return nil, "", fmt.Errorf("no run matches %q", id)
		}
		return f, id, nil
	}
}

func newEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	if opts.Now == nil {
		opts.Now = fixedNow
	}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSpecValidate(t *testing.T) {
	ok := Spec{Name: "gate", Golden: "abc123"}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for _, s := range []Spec{
		{Name: "", Golden: "g"},
		{Name: strings.Repeat("x", 65), Golden: "g"},
		{Name: "has space", Golden: "g"},
		{Name: "gate", Golden: ""},
		{Name: "gate", Golden: "g", MaxEventDelta: -1},
		{Name: "gate", Golden: "g", Tolerate: "not-a-rank-set"},
	} {
		if err := s.Validate(); err == nil {
			t.Fatalf("invalid spec accepted: %+v", s)
		}
	}
	for _, tol := range []string{"", "auto", "1,3-5"} {
		s := Spec{Name: "gate", Golden: "g", Tolerate: tol}
		if err := s.Validate(); err != nil {
			t.Fatalf("tolerate %q rejected: %v", tol, err)
		}
	}
}

func TestRegisterListDeleteAll(t *testing.T) {
	e := newEngine(t, Options{})
	for _, name := range []string{"zz", "aa"} {
		if _, err := e.Register(Spec{Tenant: "acme", Name: name, Golden: "g"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Register(Spec{Tenant: "beta", Name: "mm", Golden: "g"}); err != nil {
		t.Fatal(err)
	}

	got := e.List("acme")
	if len(got) != 2 || got[0].Name != "aa" || got[1].Name != "zz" {
		t.Fatalf("List not sorted by name: %+v", got)
	}
	if got[0].UpdatedUnixMs != fixedNow().UnixMilli() {
		t.Fatalf("Register did not stamp UpdatedUnixMs: %+v", got[0])
	}

	all := e.All()
	if len(all) != 3 || all[0].Tenant != "acme" || all[2].Tenant != "beta" {
		t.Fatalf("All not sorted by tenant then name: %+v", all)
	}

	// Re-registering a name replaces, never duplicates.
	if _, err := e.Register(Spec{Tenant: "acme", Name: "aa", Golden: "g2"}); err != nil {
		t.Fatal(err)
	}
	got = e.List("acme")
	if len(got) != 2 || got[0].Golden != "g2" {
		t.Fatalf("re-register did not replace: %+v", got)
	}

	if err := e.Delete("acme", "aa"); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("acme", "aa"); err == nil {
		t.Fatal("deleting a missing query succeeded")
	}
	if got := e.List("acme"); len(got) != 1 {
		t.Fatalf("delete left %d specs", len(got))
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cq.json")
	e := newEngine(t, Options{Persist: path})
	want, err := e.Register(Spec{Tenant: "acme", Name: "gate", Golden: "g", MaxEventDelta: 3})
	if err != nil {
		t.Fatal(err)
	}

	e2 := newEngine(t, Options{Persist: path})
	got := e2.List("acme")
	if len(got) != 1 || got[0] != want {
		t.Fatalf("persisted spec did not round-trip: %+v vs %+v", got, want)
	}

	// A corrupt file fails loudly rather than silently dropping gates.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Persist: path, Now: fixedNow}); err == nil {
		t.Fatal("corrupt persist file loaded without error")
	}
}

func TestMergeNewestWins(t *testing.T) {
	e := newEngine(t, Options{})
	if _, err := e.Register(Spec{Tenant: "acme", Name: "gate", Golden: "old", UpdatedUnixMs: 100}); err != nil {
		t.Fatal(err)
	}
	n := e.Merge([]Spec{
		{Tenant: "acme", Name: "gate", Golden: "stale", UpdatedUnixMs: 50},   // older: ignored
		{Tenant: "acme", Name: "gate2", Golden: "fresh", UpdatedUnixMs: 200}, // new name: merged
		{Tenant: "acme", Name: "bad name!", Golden: "g", UpdatedUnixMs: 300}, // invalid: skipped
	})
	if n != 1 {
		t.Fatalf("Merge merged %d, want 1", n)
	}
	got := e.List("acme")
	if len(got) != 2 || got[0].Golden != "old" || got[1].Name != "gate2" {
		t.Fatalf("merge result: %+v", got)
	}

	// A newer stamp replaces.
	if n := e.Merge([]Spec{{Tenant: "acme", Name: "gate", Golden: "new", UpdatedUnixMs: 999}}); n != 1 {
		t.Fatalf("newer spec not merged: %d", n)
	}
	if got := e.List("acme"); got[0].Golden != "new" {
		t.Fatalf("newest did not win: %+v", got[0])
	}
}

func TestDeleteTombstonePropagates(t *testing.T) {
	a := newEngine(t, Options{})
	b := newEngine(t, Options{})
	if _, err := a.Register(Spec{Tenant: "acme", Name: "gate", Golden: "g"}); err != nil {
		t.Fatal(err)
	}
	if n := b.Merge(a.All()); n != 1 {
		t.Fatalf("initial sync merged %d, want 1", n)
	}
	if err := a.Delete("acme", "gate"); err != nil {
		t.Fatal(err)
	}

	// b missed the delete broadcast and still lists the live spec...
	if got := b.List("acme"); len(got) != 1 {
		t.Fatalf("b's view before sync: %+v", got)
	}
	// ...but syncing b's live spec into a must not resurrect the gate:
	// a's tombstone out-ranks it, clock skew or not.
	if n := a.Merge(b.All()); n != 0 {
		t.Fatalf("stale live spec resurrected over the tombstone (%d merged)", n)
	}
	if got := a.List("acme"); len(got) != 0 {
		t.Fatalf("deleted gate came back on a: %+v", got)
	}
	// The reverse sync carries the tombstone and retires b's copy.
	if n := b.Merge(a.All()); n != 1 {
		t.Fatalf("tombstone not merged into b (%d)", n)
	}
	if got := b.List("acme"); len(got) != 0 {
		t.Fatalf("tombstone did not retire b's spec: %+v", got)
	}
	// Tombstones are invisible to Evaluate and List but ride All().
	tombs := 0
	for _, s := range b.All() {
		if s.Deleted {
			tombs++
		}
	}
	if tombs != 1 {
		t.Fatalf("b carries %d tombstones, want 1", tombs)
	}
	// A second delete of the same gate is an error, same as a miss.
	if err := b.Delete("acme", "gate"); err == nil {
		t.Fatal("deleting a tombstoned gate succeeded")
	}

	// Re-registration must out-rank the tombstone (the fixed clock makes
	// now == the original stamp, so the bump past the tombstone is what
	// revives it) and propagate over it.
	if _, err := a.Register(Spec{Tenant: "acme", Name: "gate", Golden: "g2"}); err != nil {
		t.Fatal(err)
	}
	if got := a.List("acme"); len(got) != 1 || got[0].Golden != "g2" {
		t.Fatalf("re-registration lost to the tombstone: %+v", got)
	}
	if n := b.Merge(a.All()); n != 1 {
		t.Fatalf("revived spec not merged into b (%d)", n)
	}
	if got := b.List("acme"); len(got) != 1 || got[0].Golden != "g2" {
		t.Fatalf("b did not adopt the revived spec: %+v", got)
	}
}

func TestEvaluateMatchesBenchmarkAndP(t *testing.T) {
	goldens := map[string]*trace.File{"gold": mkTrace(4, "lulesh", 40, 7)}
	e := newEngine(t, Options{Lookup: stubLookup(goldens)})
	for _, s := range []Spec{
		{Tenant: "acme", Name: "other-bench", Benchmark: "miniFE", Golden: "gold"},
		{Tenant: "acme", Name: "other-p", Benchmark: "lulesh", P: 8, Golden: "gold"},
		{Tenant: "other-tenant", Name: "gate", Golden: "gold"},
	} {
		if _, err := e.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	if evs := e.Evaluate("acme", "run1", mkTrace(4, "lulesh", 40, 7)); evs != nil {
		t.Fatalf("non-matching specs evaluated: %+v", evs)
	}

	// A wildcard spec ("" benchmark, P=0) matches everything in-tenant.
	if _, err := e.Register(Spec{Tenant: "acme", Name: "any", Golden: "gold"}); err != nil {
		t.Fatal(err)
	}
	evs := e.Evaluate("acme", "run1", mkTrace(4, "lulesh", 40, 7))
	if len(evs) != 1 || evs[0].CQ != "any" || evs[0].Verdict != VerdictOK {
		t.Fatalf("wildcard spec: %+v", evs)
	}
}

func TestEvaluateVerdicts(t *testing.T) {
	golden := mkTrace(4, "lulesh", 40, 7)
	goldens := map[string]*trace.File{"gold": golden}
	e := newEngine(t, Options{Lookup: stubLookup(goldens), Origin: "http://a"})
	reg := func(s Spec) {
		t.Helper()
		if _, err := e.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	eval := func(f *trace.File, runID string) Event {
		t.Helper()
		evs := e.Evaluate("acme", runID, f)
		if len(evs) != 1 {
			t.Fatalf("got %d events, want 1", len(evs))
		}
		return evs[0]
	}

	// Golden unavailable: fail closed.
	reg(Spec{Tenant: "acme", Name: "gate", Golden: "missing"})
	ev := eval(mkTrace(4, "lulesh", 40, 7), "run1")
	if ev.Verdict != VerdictRegression || !strings.Contains(ev.Reason, "golden run unavailable") {
		t.Fatalf("missing golden: %+v", ev)
	}

	// Same content address: trivially ok.
	reg(Spec{Tenant: "acme", Name: "gate", Golden: "gold"})
	if ev := eval(golden, "gold"); ev.Verdict != VerdictOK || ev.Reason != "identical content address" {
		t.Fatalf("identical address: %+v", ev)
	}

	// Equivalent trace under a different address: ok, no caveat.
	if ev := eval(mkTrace(4, "lulesh", 40, 7), "run2"); ev.Verdict != VerdictOK || ev.Reason != "" {
		t.Fatalf("equivalent run: %+v", ev)
	}

	// One extra loop iteration = +2 events per rank and +4 dynamic
	// events per call site (4 ranks): regression at exact match and at
	// a bound of 3, ok under MaxEventDelta 4 (with a caveat reason).
	drift := mkTrace(4, "lulesh", 41, 7)
	if ev := eval(drift, "run3"); ev.Verdict != VerdictRegression || ev.Reason == "" {
		t.Fatalf("drift at exact tolerance: %+v", ev)
	}
	reg(Spec{Tenant: "acme", Name: "gate", Golden: "gold", MaxEventDelta: 3})
	if ev := eval(drift, "run4"); ev.Verdict != VerdictRegression {
		t.Fatalf("drift above bound: %+v", ev)
	}
	reg(Spec{Tenant: "acme", Name: "gate", Golden: "gold", MaxEventDelta: 4})
	if ev := eval(drift, "run5"); ev.Verdict != VerdictOK || !strings.Contains(ev.Reason, "within tolerance") {
		t.Fatalf("drift within bound: %+v", ev)
	}

	// A call site present on one side only is never forgiven, however
	// generous the event-delta bound.
	reg(Spec{Tenant: "acme", Name: "gate", Golden: "gold", MaxEventDelta: 1 << 40})
	if ev := eval(mkTrace(4, "lulesh", 40, 99), "run6"); ev.Verdict != VerdictRegression {
		t.Fatalf("new code path forgiven: %+v", ev)
	}
}

func TestEvaluateTolerate(t *testing.T) {
	// The new run diverges only on rank 0: an extra private call site.
	mk := func() *trace.File {
		f := mkTrace(4, "lulesh", 40, 7)
		ev := trace.Event{Op: mpi.OpSend, Stack: sig.Stack(sig.Mix(4242)), Dest: trace.Relative(1), Tag: 9, Bytes: 8}
		f.Nodes = append(f.Nodes, trace.NewLeaf(ev, ranklist.FromRanks([]int{0}), 100))
		return f
	}
	goldens := map[string]*trace.File{"gold": mkTrace(4, "lulesh", 40, 7)}
	e := newEngine(t, Options{Lookup: stubLookup(goldens)})

	if _, err := e.Register(Spec{Tenant: "acme", Name: "strict", Golden: "gold"}); err != nil {
		t.Fatal(err)
	}
	evs := e.Evaluate("acme", "r1", mk())
	if evs[0].Verdict != VerdictRegression {
		t.Fatalf("rank-0 divergence not caught: %+v", evs[0])
	}

	// Excluding rank 0 excludes its private call site from both sides.
	if _, err := e.Register(Spec{Tenant: "acme", Name: "strict", Golden: "gold", Tolerate: "0"}); err != nil {
		t.Fatal(err)
	}
	evs = e.Evaluate("acme", "r2", mk())
	if evs[0].Verdict != VerdictOK {
		t.Fatalf("tolerated rank still fails the gate: %+v", evs[0])
	}

	// "auto" reads the retired-rank lists instead.
	if _, err := e.Register(Spec{Tenant: "acme", Name: "strict", Golden: "gold", Tolerate: "auto"}); err != nil {
		t.Fatal(err)
	}
	faulted := mk()
	faulted.Retired = []int{0}
	evs = e.Evaluate("acme", "r3", faulted)
	if evs[0].Verdict != VerdictOK {
		t.Fatalf("auto-tolerate ignored the retired rank: %+v", evs[0])
	}
}

func TestEventIDsAndOnEvent(t *testing.T) {
	var mu sync.Mutex
	var seen []Event
	goldens := map[string]*trace.File{"gold": mkTrace(2, "b", 10, 1)}
	e := newEngine(t, Options{
		Lookup: stubLookup(goldens),
		Origin: "http://peer-a:8321",
		OnEvent: func(ev Event) {
			mu.Lock()
			seen = append(seen, ev)
			mu.Unlock()
		},
	})
	if _, err := e.Register(Spec{Tenant: "acme", Name: "gate", Golden: "gold"}); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for i := 0; i < 5; i++ {
		evs := e.Evaluate("acme", fmt.Sprintf("run%d", i), mkTrace(2, "b", 10, 1))
		id := evs[0].ID
		if !strings.HasPrefix(id, "http://peer-a:8321#") {
			t.Fatalf("event ID missing origin prefix: %q", id)
		}
		if ids[id] {
			t.Fatalf("duplicate event ID %q", id)
		}
		ids[id] = true
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 5 {
		t.Fatalf("OnEvent saw %d events, want 5", len(seen))
	}
}

func TestAppendDedupAndFeedCap(t *testing.T) {
	e := newEngine(t, Options{MaxEvents: 4})
	if e.Append(Event{Tenant: "acme"}) {
		t.Fatal("event without ID accepted")
	}
	if e.Append(Event{ID: "x#1"}) {
		t.Fatal("event without tenant accepted")
	}
	ev := Event{ID: "peer#1", Tenant: "acme", CQ: "gate", Verdict: VerdictOK}
	if !e.Append(ev) {
		t.Fatal("fresh event rejected")
	}
	if e.Append(ev) {
		t.Fatal("duplicate event ID accepted")
	}

	for i := 2; i <= 7; i++ {
		e.Append(Event{ID: fmt.Sprintf("peer#%d", i), Tenant: "acme", Verdict: VerdictOK})
	}
	fd := e.Feed("acme")
	if len(fd.Events) != 4 {
		t.Fatalf("feed holds %d events, cap is 4", len(fd.Events))
	}
	if fd.Events[0].ID != "peer#4" || fd.Events[3].ID != "peer#7" {
		t.Fatalf("cap did not evict oldest-first: %+v", fd.Events)
	}
	if fd.Version != 7 {
		t.Fatalf("version = %d, want 7", fd.Version)
	}

	// Tenant feeds are isolated.
	if got := e.Feed("other"); got.Version != 0 || len(got.Events) != 0 {
		t.Fatalf("tenant isolation broken: %+v", got)
	}
}

func TestWatchLongPoll(t *testing.T) {
	e := newEngine(t, Options{})

	// Timeout path: nothing arrives, the current (empty) view returns.
	start := time.Now()
	fd := e.Watch("acme", 0, 50*time.Millisecond)
	if fd.Version != 0 || time.Since(start) < 40*time.Millisecond {
		t.Fatalf("timeout watch misbehaved: v=%d after %v", fd.Version, time.Since(start))
	}

	// Wake path: a concurrent append releases the watcher.
	done := make(chan FeedView, 1)
	go func() { done <- e.Watch("acme", 0, 5*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	e.Append(Event{ID: "peer#1", Tenant: "acme", Verdict: VerdictRegression})
	select {
	case fd := <-done:
		if fd.Version != 1 || len(fd.Events) != 1 || fd.Events[0].Verdict != VerdictRegression {
			t.Fatalf("woken watch view: %+v", fd)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch never woke on append")
	}

	// A watcher already behind returns immediately.
	start = time.Now()
	if fd := e.Watch("acme", 0, 5*time.Second); fd.Version != 1 || time.Since(start) > time.Second {
		t.Fatalf("stale watch did not return immediately: %+v", fd)
	}
}
