// Package cq is the continuous-query engine: standing "compare every
// ingest of benchmark B at P against golden run G" registrations that
// turn the archive's server-side diff into a CI regression gate.
//
// A Spec names a tenant-scoped query; on every matching ingest the
// owning peer diffs the new run against the golden (the same
// analysis.CompareWith engine behind chamstat -diff and GET
// /runs/{a}/diff/{b}) and appends an "ok" or "regression" Event to the
// tenant's feed. Feeds carry a version counter with long-poll Watch —
// the store.Live idiom — so `chamrun -push` plus one registered query
// and one watcher is a complete regression gate: push, watch, exit
// non-zero on "regression".
//
// Tolerance has two axes: Tolerate excludes ranks from both sides of
// the diff ("auto" = the union of retired/crashed ranks, or an explicit
// rank-set like "1,3-5"), and MaxEventDelta forgives per-rank and
// per-site dynamic event-count drift up to an absolute bound. Call
// sites present on one side only are never forgiven — a new or vanished
// code path is always a regression.
package cq

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"chameleon/internal/analysis"
	"chameleon/internal/fault"
	"chameleon/internal/obs"
	"chameleon/internal/trace"
)

// Verdicts.
const (
	VerdictOK         = "ok"
	VerdictRegression = "regression"
)

// Spec is one registered continuous query.
type Spec struct {
	// Tenant scopes the query; the HTTP layer fills it from the
	// X-Cham-Tenant header.
	Tenant string `json:"tenant"`
	// Name identifies the query within its tenant; PUT /cq with an
	// existing name replaces the registration.
	Name string `json:"name"`
	// Benchmark matches ingests by trace benchmark name ("" matches
	// every benchmark).
	Benchmark string `json:"benchmark,omitempty"`
	// P matches ingests by rank count (0 matches any).
	P int `json:"p,omitempty"`
	// Golden is the reference run: a content address or unique prefix
	// that must resolve in the mesh.
	Golden string `json:"golden"`
	// Tolerate excludes ranks from the diff: "", "auto" (retired ranks
	// of either side), or an explicit rank-set ("1,3-5").
	Tolerate string `json:"tolerate,omitempty"`
	// MaxEventDelta forgives per-rank and per-site dynamic event count
	// drift up to this absolute bound (0 = exact).
	MaxEventDelta int64 `json:"max_event_delta,omitempty"`
	// UpdatedUnixMs stamps the registration; anti-entropy merges keep
	// the newest.
	UpdatedUnixMs int64 `json:"updated_unix_ms,omitempty"`
	// Deleted marks a tombstone: the query was unregistered at
	// UpdatedUnixMs. Tombstones never match ingests or appear in
	// listings, but they do ride the anti-entropy sync so a peer that
	// missed the delete broadcast retires its copy instead of
	// resurrecting the spec mesh-wide.
	Deleted bool `json:"deleted,omitempty"`
}

// Validate checks the registration fields that do not need the archive.
func (s Spec) Validate() error {
	if s.Name == "" || len(s.Name) > 64 {
		return fmt.Errorf("cq: name must be 1-64 chars")
	}
	for _, c := range s.Name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("cq: name contains %q (allowed: [A-Za-z0-9._-])", c)
		}
	}
	if s.Deleted {
		// A tombstone carries only identity and stamp.
		return nil
	}
	if s.Golden == "" {
		return fmt.Errorf("cq: golden run reference is required")
	}
	if s.MaxEventDelta < 0 {
		return fmt.Errorf("cq: max_event_delta must be >= 0")
	}
	if s.Tolerate != "" && s.Tolerate != "auto" {
		if _, err := fault.ParseRankSet(s.Tolerate); err != nil {
			return fmt.Errorf("cq: tolerate: %w", err)
		}
	}
	return nil
}

// Event is one gate evaluation appended to a tenant feed.
type Event struct {
	// ID is unique across the mesh (origin peer + sequence); peers
	// receiving a broadcast event dedup on it.
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	CQ       string `json:"cq"`
	Run      string `json:"run"`
	Golden   string `json:"golden"`
	Verdict  string `json:"verdict"`
	Reason   string `json:"reason,omitempty"`
	AtUnixMs int64  `json:"at_unix_ms"`
}

// FeedView is the watcher-facing snapshot of one tenant's feed.
type FeedView struct {
	Tenant  string  `json:"tenant"`
	Version uint64  `json:"version"`
	Events  []Event `json:"events"`
}

// Lookup resolves a golden run reference into its decoded trace and
// full content address — locally or, under federation, from whichever
// peer owns it.
type Lookup func(tenant, id string) (*trace.File, string, error)

// Options configures an Engine.
type Options struct {
	// Lookup resolves golden runs (required for Evaluate).
	Lookup Lookup
	// Persist, when non-empty, saves registrations to this JSON file
	// (atomic write) and loads them at New.
	Persist string
	// Origin prefixes event IDs (the peer's own URL under federation).
	Origin string
	// MaxEvents bounds each tenant feed (default 256).
	MaxEvents int
	// OnEvent, when non-nil, observes every locally generated event
	// (the federation layer broadcasts them to peers).
	OnEvent func(Event)
	// Now overrides the clock (tests).
	Now func() time.Time
	// Reg receives cq_* metrics.
	Reg *obs.Registry
}

type feed struct {
	version uint64
	events  []Event
	seen    map[string]bool
	changed chan struct{}
}

// Engine holds the registrations and per-tenant event feeds of one
// peer. All methods are safe for concurrent use.
type Engine struct {
	mu    sync.Mutex
	opts  Options
	specs map[string]map[string]*Spec // tenant -> name -> spec
	feeds map[string]*feed
	seq   uint64
	nonce int64

	mEvals, mRegressions, mEvents *obs.Counter
	gSpecs                        *obs.Gauge
}

// New builds an engine, loading persisted registrations if Persist
// names an existing file.
func New(opts Options) (*Engine, error) {
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 256
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Origin == "" {
		opts.Origin = "local"
	}
	e := &Engine{
		opts:         opts,
		specs:        map[string]map[string]*Spec{},
		feeds:        map[string]*feed{},
		nonce:        opts.Now().UnixNano(),
		mEvals:       opts.Reg.Counter("cq_evaluations"),
		mRegressions: opts.Reg.Counter("cq_regressions"),
		mEvents:      opts.Reg.Counter("cq_events"),
		gSpecs:       opts.Reg.Gauge("cq_specs"),
	}
	if opts.Persist != "" {
		data, err := os.ReadFile(opts.Persist)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("cq: load %s: %w", opts.Persist, err)
		}
		if err == nil {
			var specs []Spec
			if err := json.Unmarshal(data, &specs); err != nil {
				return nil, fmt.Errorf("cq: load %s: %w", opts.Persist, err)
			}
			for i := range specs {
				s := specs[i]
				e.putLocked(&s)
			}
		}
	}
	return e, nil
}

func (e *Engine) putLocked(s *Spec) {
	t := e.specs[s.Tenant]
	if t == nil {
		t = map[string]*Spec{}
		e.specs[s.Tenant] = t
	}
	t[s.Name] = s
}

func (e *Engine) countLocked() int {
	n := 0
	for _, t := range e.specs {
		for _, s := range t {
			if !s.Deleted {
				n++
			}
		}
	}
	return n
}

// persistLocked writes the full registration set atomically. Callers
// hold e.mu.
func (e *Engine) persistLocked() error {
	if e.opts.Persist == "" {
		return nil
	}
	specs := e.allLocked()
	data, err := json.MarshalIndent(specs, "", " ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(e.opts.Persist)
	tmp, err := os.CreateTemp(dir, "cq-*")
	if err != nil {
		return fmt.Errorf("cq: persist: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("cq: persist: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("cq: persist: %w", err)
	}
	if err := os.Rename(name, e.opts.Persist); err != nil {
		os.Remove(name)
		return fmt.Errorf("cq: persist: %w", err)
	}
	return nil
}

// Register adds or replaces a registration (idempotent by tenant+name)
// and returns the stored spec with its update stamp.
func (e *Engine) Register(s Spec) (Spec, error) {
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.UpdatedUnixMs == 0 {
		s.UpdatedUnixMs = e.opts.Now().UnixMilli()
		// A re-registration must out-rank whatever it replaces — live
		// spec or tombstone — under the newest-wins merge, even across
		// peer clock skew.
		if cur := e.specs[s.Tenant][s.Name]; cur != nil && s.UpdatedUnixMs <= cur.UpdatedUnixMs {
			s.UpdatedUnixMs = cur.UpdatedUnixMs + 1
		}
	}
	e.putLocked(&s)
	e.gSpecs.Set(int64(e.countLocked()))
	if err := e.persistLocked(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Delete retires a registration. It leaves a tombstone rather than
// removing the entry: the delete broadcast is best-effort, so a peer
// that was down must learn of the deletion from the anti-entropy sync —
// a bare absence would merge as "peer has something I lack" and
// resurrect the spec mesh-wide. The tombstone's stamp is forced past
// the live spec's so newest-wins always retires it, clock skew or not.
func (e *Engine) Delete(tenant, name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.specs[tenant][name]
	if cur == nil || cur.Deleted {
		return fmt.Errorf("cq: query %q not found", name)
	}
	stamp := e.opts.Now().UnixMilli()
	if stamp <= cur.UpdatedUnixMs {
		stamp = cur.UpdatedUnixMs + 1
	}
	e.putLocked(&Spec{Tenant: tenant, Name: name, Deleted: true, UpdatedUnixMs: stamp})
	e.gSpecs.Set(int64(e.countLocked()))
	return e.persistLocked()
}

// List returns one tenant's live registrations (tombstones excluded),
// sorted by name.
func (e *Engine) List(tenant string) []Spec {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Spec, 0, len(e.specs[tenant]))
	for _, s := range e.specs[tenant] {
		if s.Deleted {
			continue
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// All returns every registration across tenants, tombstones included
// (the anti-entropy sync payload), sorted by tenant then name.
func (e *Engine) All() []Spec {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.allLocked()
}

func (e *Engine) allLocked() []Spec {
	var out []Spec
	for _, t := range e.specs {
		for _, s := range t {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Name < out[j].Name
	})
	if out == nil {
		out = []Spec{}
	}
	return out
}

// Merge folds peer registrations in, newest update stamp winning —
// including tombstones, so deletions propagate through anti-entropy
// instead of being undone by it. Invalid specs are skipped. It returns
// how many local registrations changed.
func (e *Engine) Merge(specs []Spec) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	merged := 0
	for i := range specs {
		s := specs[i]
		if s.Validate() != nil {
			continue
		}
		cur := e.specs[s.Tenant][s.Name]
		if cur != nil && cur.UpdatedUnixMs >= s.UpdatedUnixMs {
			continue
		}
		e.putLocked(&s)
		merged++
	}
	if merged > 0 {
		e.gSpecs.Set(int64(e.countLocked()))
		e.persistLocked() //nolint:errcheck — best-effort sync persistence
	}
	return merged
}

// Evaluate runs every registration matching an ingested run and
// returns the events appended (nil when nothing matched). The
// federation layer calls it on the run's primary owner only.
func (e *Engine) Evaluate(tenant, runID string, f *trace.File) []Event {
	e.mu.Lock()
	var matched []Spec
	for _, s := range e.specs[tenant] {
		if s.Deleted {
			continue
		}
		if s.Benchmark != "" && s.Benchmark != f.Benchmark {
			continue
		}
		if s.P != 0 && s.P != f.P {
			continue
		}
		matched = append(matched, *s)
	}
	e.mu.Unlock()
	if len(matched) == 0 {
		return nil
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].Name < matched[j].Name })

	var out []Event
	for _, s := range matched {
		e.mEvals.Inc()
		ev := e.evaluateOne(tenant, runID, f, s)
		if ev.Verdict == VerdictRegression {
			e.mRegressions.Inc()
		}
		out = append(out, e.appendLocal(ev))
	}
	return out
}

func (e *Engine) evaluateOne(tenant, runID string, f *trace.File, s Spec) Event {
	ev := Event{
		Tenant: tenant, CQ: s.Name, Run: runID, Golden: s.Golden,
		AtUnixMs: e.opts.Now().UnixMilli(),
	}
	golden, goldenID, err := e.opts.Lookup(tenant, s.Golden)
	if err != nil {
		ev.Verdict = VerdictRegression
		ev.Reason = fmt.Sprintf("golden run unavailable: %v", err)
		return ev
	}
	ev.Golden = goldenID
	if goldenID == runID {
		ev.Verdict = VerdictOK
		ev.Reason = "identical content address"
		return ev
	}
	tol, err := tolerated(s.Tolerate, f, golden)
	if err != nil {
		ev.Verdict = VerdictRegression
		ev.Reason = err.Error()
		return ev
	}
	d := analysis.CompareWith(f, golden, analysis.CompareOpts{TolerateRanks: tol})
	if within(d, s.MaxEventDelta) {
		ev.Verdict = VerdictOK
		if !d.Equivalent() {
			ev.Reason = fmt.Sprintf("within tolerance (max event delta %d): %s", s.MaxEventDelta, d.Reason())
		}
		return ev
	}
	ev.Verdict = VerdictRegression
	ev.Reason = d.Reason()
	return ev
}

// tolerated resolves a Tolerate spec against the two traces.
func tolerated(spec string, a, b *trace.File) ([]int, error) {
	switch spec {
	case "":
		return nil, nil
	case "auto":
		set := map[int]bool{}
		for _, r := range a.Retired {
			set[r] = true
		}
		for _, r := range b.Retired {
			set[r] = true
		}
		out := make([]int, 0, len(set))
		for r := range set {
			out = append(out, r)
		}
		sort.Ints(out)
		return out, nil
	default:
		rs, err := fault.ParseRankSet(spec)
		if err != nil {
			return nil, fmt.Errorf("tolerate: %v", err)
		}
		p := a.P
		if b.P > p {
			p = b.P
		}
		return rs.Ranks(p), nil
	}
}

// within reports whether a diff passes under the event-delta bound:
// no call sites unique to either side, and every per-rank and per-site
// dynamic event delta within max.
func within(d *analysis.Diff, max int64) bool {
	if len(d.MissingInA) > 0 || len(d.MissingInB) > 0 {
		return false
	}
	for _, delta := range d.EventDeltas {
		if delta > max || -delta > max {
			return false
		}
	}
	for _, delta := range d.SiteCountDeltas {
		if delta > max || -delta > max {
			return false
		}
	}
	return true
}

// appendLocal stamps an ID onto a locally generated event, appends it,
// notifies OnEvent for federation broadcast, and returns the stamped
// event.
func (e *Engine) appendLocal(ev Event) Event {
	e.mu.Lock()
	e.seq++
	ev.ID = fmt.Sprintf("%s#%x-%d", e.opts.Origin, e.nonce, e.seq)
	e.appendLocked(ev)
	e.mu.Unlock()
	if e.opts.OnEvent != nil {
		e.opts.OnEvent(ev)
	}
	return ev
}

// Append folds a broadcast event from a peer into the local feed,
// dedup'd by event ID. It reports whether the event was new.
func (e *Engine) Append(ev Event) bool {
	if ev.ID == "" || ev.Tenant == "" {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	fd := e.feedLocked(ev.Tenant)
	if fd.seen[ev.ID] {
		return false
	}
	e.appendLocked(ev)
	return true
}

func (e *Engine) feedLocked(tenant string) *feed {
	fd := e.feeds[tenant]
	if fd == nil {
		fd = &feed{seen: map[string]bool{}, changed: make(chan struct{})}
		e.feeds[tenant] = fd
	}
	return fd
}

// appendLocked adds the event to its tenant feed and bumps the feed
// version. Callers hold e.mu.
func (e *Engine) appendLocked(ev Event) {
	fd := e.feedLocked(ev.Tenant)
	fd.events = append(fd.events, ev)
	fd.seen[ev.ID] = true
	if over := len(fd.events) - e.opts.MaxEvents; over > 0 {
		for _, old := range fd.events[:over] {
			delete(fd.seen, old.ID)
		}
		fd.events = append(fd.events[:0], fd.events[over:]...)
	}
	fd.version++
	close(fd.changed)
	fd.changed = make(chan struct{})
	e.mEvents.Inc()
}

// Feed snapshots one tenant's event feed.
func (e *Engine) Feed(tenant string) FeedView {
	e.mu.Lock()
	defer e.mu.Unlock()
	fd := e.feedLocked(tenant)
	return FeedView{
		Tenant:  tenant,
		Version: fd.version,
		Events:  append([]Event{}, fd.events...),
	}
}

// Watch blocks until the tenant feed's version exceeds after or the
// timeout elapses, returning the current view either way. Watching a
// tenant with no events yet simply blocks until the first one.
func (e *Engine) Watch(tenant string, after uint64, timeout time.Duration) FeedView {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		e.mu.Lock()
		fd := e.feedLocked(tenant)
		if fd.version > after {
			v := FeedView{Tenant: tenant, Version: fd.version, Events: append([]Event{}, fd.events...)}
			e.mu.Unlock()
			return v
		}
		ch := fd.changed
		e.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return e.Feed(tenant)
		}
	}
}
