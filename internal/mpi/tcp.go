package mpi

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/vtime"
)

// TCP transport: one world of P ranks spread over N OS processes, each
// hosting a contiguous rank range. A small rendezvous step forms the
// fleet — every process dials the -join address (whichever process wins
// the bind race also serves it), registers its range and data listener,
// and receives the roster — then the members build a full mesh of
// length-prefixed frame connections (frame.go) and the coordinator
// releases the run.
//
// Determinism: all timing is virtual and program-derived (vtime), so
// frame delivery timing never influences clocks; collectives use
// specific-source receives; call-site signatures are PC-derived and
// identical across processes of the same binary. A fleet run therefore
// produces bit-identical trace signatures to the in-process run of the
// same seed — transport_e2e_test.go locks this in.
//
// Wildcard (ANY_SOURCE) matching needs the conservative LBTS rule over
// the whole world. The local half is Runtime.lbtsSafe; for remote ranks
// the transport runs a counter-stable bound sweep: it asks every peer
// for (min future-influence bound over its local ranks, change
// generation, per-peer data-frame send/receive counters) and trusts the
// answer only when two consecutive sweeps return identical generations
// and the global counter matrix balances (no frame in flight anywhere —
// a consistent cut, Mattern-style). Rare in practice: the paper's
// benchmarks use specific sources; only master/worker skeletons pay it.

// TCPOptions parameterizes a fleet member.
type TCPOptions struct {
	// Join is the rendezvous address (host:port). The first process to
	// bind it becomes the coordinator; everyone (including the
	// coordinator's own member) dials it.
	Join string
	// RankLo/RankHi is the inclusive world-rank range hosted here.
	RankLo, RankHi int
	// P is the world size; all members must agree.
	P int
	// Session labels the fleet (live telemetry attribution); empty lets
	// the coordinator generate one. Non-coordinator values are ignored.
	Session string
	// Fingerprint guards against mismatched fleet configs (different
	// seeds, plans, models); all members must present the same value.
	Fingerprint string
	// ExitOnCrash makes a process whose local ranks have all
	// crash-stopped physically exit (SIGKILL itself) after notifying
	// the fleet — crash = killed process. Survivor failover keeps
	// running over the sockets.
	ExitOnCrash bool
	// OnCrashExit runs just before the self-kill (flush journals).
	OnCrashExit func()
	// DialTimeout bounds the rendezvous phase (default 20s).
	DialTimeout time.Duration
	// Logf, when non-nil, receives transport progress lines.
	Logf func(format string, args ...any)
}

// FleetInfo describes the formed fleet.
type FleetInfo struct {
	// Session is the fleet-wide session ID (coordinator-assigned).
	Session string
	// Member is this process's index (position by ascending rank
	// range); Members is the fleet size.
	Member, Members int
	// HostsRank0 reports whether world rank 0 runs here (the process
	// that owns the merged trace and prints results).
	HostsRank0 bool
}

// TCPStats counts transport work for the benchmark harness.
type TCPStats struct {
	FramesOut, BytesOut uint64
	FramesIn, BytesIn   uint64
	BoundSweeps         uint64
}

// memberSpec is one fleet member's slot in the roster.
type memberSpec struct {
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
	Addr string `json:"addr"`
}

// coordMsg is the JSON-lines control document on rendezvous
// connections.
type coordMsg struct {
	T string `json:"t"`
	// register
	Lo   int    `json:"lo,omitempty"`
	Hi   int    `json:"hi,omitempty"`
	P    int    `json:"p,omitempty"`
	Addr string `json:"addr,omitempty"`
	FP   string `json:"fp,omitempty"`
	// roster
	Session string       `json:"session,omitempty"`
	Members []memberSpec `json:"members,omitempty"`
	// alloc / allocr
	N    int   `json:"n,omitempty"`
	Base int64 `json:"base,omitempty"`
	// result / leaving / final
	Ranks    []int              `json:"ranks,omitempty"`
	Clocks   []int64            `json:"clocks,omitempty"`
	Ledgers  [][]vtime.Duration `json:"ledgers,omitempty"`
	Departed []int              `json:"departed,omitempty"`
	// err / abort
	Msg string `json:"msg,omitempty"`
}

// tcpPeer is one mesh connection to another member.
type tcpPeer struct {
	idx    int
	lo, hi int
	conn   net.Conn
	bw     *bufio.Writer
	wmu    sync.Mutex
	// left: the peer announced a planned exit (all its ranks
	// crash-stopped); eof: its connection has drained and closed.
	left atomic.Bool
	eof  atomic.Bool
}

// TCPTransport implements Transport over a fleet of OS processes.
type TCPTransport struct {
	opts    TCPOptions
	rt      *Runtime
	session string
	selfIdx int
	members []memberSpec
	peers   map[int]*tcpPeer
	owner   []int // world rank -> member index

	coord    net.Conn
	coordDec *json.Decoder
	coordMu  sync.Mutex // serializes coordinator writes
	allocCh  chan int64
	finalCh  chan *coordMsg
	abortCh  chan struct{}
	abortMsg atomic.Pointer[string]
	abortOne sync.Once

	// gen is the stability generation peers' bound sweeps compare:
	// bumped on every deposit into a local mailbox and every local
	// rank-state transition.
	gen   atomic.Uint64
	sent  []atomic.Uint64 // data frames sent, by member index
	recvd []atomic.Uint64 // data frames received, by member index

	reqID   atomic.Uint64
	boundMu sync.Mutex
	boundCh map[uint64]chan *ctlMsg

	depMu    sync.Mutex
	depLocal map[int]bool

	stats struct {
		framesOut, bytesOut atomic.Uint64
		framesIn, bytesIn   atomic.Uint64
		sweeps              atomic.Uint64
	}

	closing atomic.Bool
	// finishing is set once all local ranks have completed and the
	// result exchange has begun: from then on a mesh EOF is a peer that
	// finished first and closed, not a death (no data can be pending —
	// every local rank already ran to completion).
	finishing atomic.Bool
	worldDone atomic.Bool
	stopTick  chan struct{}
	wg        sync.WaitGroup

	srv *rendezvousServer // non-nil on the process that won the bind
	ln  net.Listener      // data listener
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport performs the rendezvous (bind-or-dial the join
// address, register, mesh with every peer) and returns a transport
// ready for mpi.Run. It blocks until the whole fleet has formed or the
// dial timeout expires.
func NewTCPTransport(opts TCPOptions) (*TCPTransport, error) {
	if opts.P <= 0 || opts.RankLo < 0 || opts.RankHi < opts.RankLo || opts.RankHi >= opts.P {
		return nil, fmt.Errorf("mpi: invalid rank range %d..%d of world %d", opts.RankLo, opts.RankHi, opts.P)
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 20 * time.Second
	}
	t := &TCPTransport{
		opts:     opts,
		peers:    map[int]*tcpPeer{},
		allocCh:  make(chan int64, 16),
		finalCh:  make(chan *coordMsg, 1),
		abortCh:  make(chan struct{}),
		boundCh:  map[uint64]chan *ctlMsg{},
		depLocal: map[int]bool{},
		stopTick: make(chan struct{}),
	}

	// Data listener first: its address goes into the registration.
	ln, err := net.Listen("tcp", ":0")
	if err != nil {
		return nil, fmt.Errorf("mpi: data listener: %w", err)
	}
	t.ln = ln

	// Bind-or-dial the rendezvous: losing the bind race just means
	// someone else coordinates.
	if srvLn, err := net.Listen("tcp", opts.Join); err == nil {
		t.srv = newRendezvousServer(srvLn, opts.P, opts.Session)
		go t.srv.serve()
		t.logf("coordinating fleet on %s", opts.Join)
	}
	conn, err := dialRetry(opts.Join, opts.DialTimeout)
	if err != nil {
		t.teardownEarly()
		return nil, fmt.Errorf("mpi: rendezvous %s: %w", opts.Join, err)
	}
	t.coord = conn
	t.coordDec = json.NewDecoder(conn)

	if err := t.rendezvous(); err != nil {
		t.teardownEarly()
		return nil, err
	}
	return t, nil
}

// Info describes the formed fleet.
func (t *TCPTransport) Info() FleetInfo {
	return FleetInfo{
		Session:    t.session,
		Member:     t.selfIdx,
		Members:    len(t.members),
		HostsRank0: t.opts.RankLo == 0,
	}
}

// Stats snapshots the transport counters.
func (t *TCPTransport) Stats() TCPStats {
	return TCPStats{
		FramesOut:   t.stats.framesOut.Load(),
		BytesOut:    t.stats.bytesOut.Load(),
		FramesIn:    t.stats.framesIn.Load(),
		BytesIn:     t.stats.bytesIn.Load(),
		BoundSweeps: t.stats.sweeps.Load(),
	}
}

func (t *TCPTransport) logf(format string, args ...any) {
	if t.opts.Logf != nil {
		t.opts.Logf(format, args...)
	}
}

func (t *TCPTransport) teardownEarly() {
	if t.coord != nil {
		t.coord.Close()
	}
	if t.ln != nil {
		t.ln.Close()
	}
	if t.srv != nil {
		t.srv.close()
	}
	for _, p := range t.peers {
		if p.conn != nil {
			p.conn.Close()
		}
	}
}

// dialRetry dials addr until it answers or the timeout expires (the
// coordinator may not have bound yet).
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// sendCoord writes one JSON line on the rendezvous connection.
func (t *TCPTransport) sendCoord(m *coordMsg) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	t.coordMu.Lock()
	defer t.coordMu.Unlock()
	_, err = t.coord.Write(data)
	return err
}

// rendezvous runs the member side of fleet formation: register, await
// the roster, mesh with peers, report ready, await the start.
func (t *TCPTransport) rendezvous() error {
	lnAddr := t.ln.Addr().String()
	if err := t.sendCoord(&coordMsg{
		T: "register", Lo: t.opts.RankLo, Hi: t.opts.RankHi,
		P: t.opts.P, Addr: lnAddr, FP: t.opts.Fingerprint,
	}); err != nil {
		return fmt.Errorf("mpi: register: %w", err)
	}
	roster, err := t.awaitCoord("roster")
	if err != nil {
		return err
	}
	t.session = roster.Session
	t.members = roster.Members
	t.owner = make([]int, t.opts.P)
	t.selfIdx = -1
	for i, m := range t.members {
		for r := m.Lo; r <= m.Hi; r++ {
			t.owner[r] = i
		}
		if m.Lo == t.opts.RankLo {
			t.selfIdx = i
		}
	}
	if t.selfIdx < 0 {
		return fmt.Errorf("mpi: roster does not contain this member")
	}
	t.sent = make([]atomic.Uint64, len(t.members))
	t.recvd = make([]atomic.Uint64, len(t.members))
	if err := t.mesh(); err != nil {
		return err
	}
	if err := t.sendCoord(&coordMsg{T: "ready"}); err != nil {
		return fmt.Errorf("mpi: ready: %w", err)
	}
	if _, err := t.awaitCoord("start"); err != nil {
		return err
	}
	t.logf("fleet formed: session=%s member=%d/%d ranks=%d..%d",
		t.session, t.selfIdx, len(t.members), t.opts.RankLo, t.opts.RankHi)
	return nil
}

// awaitCoord reads rendezvous lines until one of type want arrives
// (err/abort lines fail immediately).
func (t *TCPTransport) awaitCoord(want string) (*coordMsg, error) {
	for {
		var m coordMsg
		if err := t.coordDec.Decode(&m); err != nil {
			return nil, fmt.Errorf("mpi: rendezvous closed awaiting %s: %w", want, err)
		}
		switch m.T {
		case want:
			return &m, nil
		case "err", "abort":
			return nil, fmt.Errorf("mpi: rendezvous: %s", m.Msg)
		}
	}
}

// mesh builds the full data mesh: dial every lower-indexed member and
// accept a connection from every higher-indexed one, exchanging hello
// frames to bind connections to member indices.
func (t *TCPTransport) mesh() error {
	need := len(t.members) - 1
	type hello struct {
		peer *tcpPeer
		err  error
	}
	ch := make(chan hello, need)

	higher := 0
	for j := t.selfIdx + 1; j < len(t.members); j++ {
		higher++
	}
	go func() {
		for i := 0; i < higher; i++ {
			conn, err := t.ln.Accept()
			if err != nil {
				ch <- hello{err: err}
				return
			}
			go func(conn net.Conn) {
				br := bufio.NewReader(conn)
				body, err := readFrame(br)
				if err != nil {
					ch <- hello{err: fmt.Errorf("mesh accept: %w", err)}
					return
				}
				ctl, err := decodeCtlFrame(body)
				if err != nil || ctl.T != "hello" || ctl.Member <= t.selfIdx || ctl.Member >= len(t.members) {
					conn.Close()
					ch <- hello{err: fmt.Errorf("mesh accept: bad hello")}
					return
				}
				m := t.members[ctl.Member]
				ch <- hello{peer: &tcpPeer{idx: ctl.Member, lo: m.Lo, hi: m.Hi, conn: conn, bw: bufio.NewWriter(conn)}}
			}(conn)
		}
	}()

	for j := 0; j < t.selfIdx; j++ {
		conn, err := dialRetry(t.members[j].Addr, t.opts.DialTimeout)
		if err != nil {
			return fmt.Errorf("mpi: mesh dial member %d (%s): %w", j, t.members[j].Addr, err)
		}
		body, err := appendCtlFrame(nil, &ctlMsg{T: "hello", Member: t.selfIdx})
		if err != nil {
			return err
		}
		if err := writeFrame(conn, body); err != nil {
			return fmt.Errorf("mpi: mesh hello to member %d: %w", j, err)
		}
		m := t.members[j]
		t.peers[j] = &tcpPeer{idx: j, lo: m.Lo, hi: m.Hi, conn: conn, bw: bufio.NewWriter(conn)}
	}
	for i := 0; i < higher; i++ {
		h := <-ch
		if h.err != nil {
			return fmt.Errorf("mpi: mesh: %w", h.err)
		}
		t.peers[h.peer.idx] = h.peer
	}
	return nil
}

// --- Transport interface ---------------------------------------------------

func (t *TCPTransport) localRanks(p int) []int {
	ranks := make([]int, 0, t.opts.RankHi-t.opts.RankLo+1)
	for r := t.opts.RankLo; r <= t.opts.RankHi; r++ {
		ranks = append(ranks, r)
	}
	return ranks
}

func (t *TCPTransport) start(rt *Runtime) error {
	t.rt = rt
	for _, p := range t.peers {
		t.wg.Add(1)
		go t.readLoop(p)
	}
	t.wg.Add(1)
	go t.coordLoop()
	// Liveness ticker: remote progress (deposits between ranks of a
	// peer process, remote clock advances) does not bump the local
	// generation, so wildcard matchers re-poll on a short period
	// instead of waiting indefinitely. Only armed while a matcher
	// waits.
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-t.stopTick:
				return
			case <-tick.C:
				if rt.anyWaiters.Load() > 0 {
					rt.bump()
				}
			}
		}
	}()
	return nil
}

func (t *TCPTransport) deposit(dest int, msg message) {
	rt := t.rt
	if rt.mailboxes[dest] != nil {
		rt.depositLocal(dest, msg)
		t.gen.Add(1)
		return
	}
	idx := t.owner[dest]
	peer := t.peers[idx]
	body, err := appendDataFrame(nil, dest, msg)
	if err != nil {
		// Programming error (unregistered payload type): unwind this
		// rank; Run reports it and aborts the fleet.
		panic(err)
	}
	peer.wmu.Lock()
	if peer.left.Load() || t.worldDone.Load() || t.closing.Load() {
		peer.wmu.Unlock()
		return
	}
	werr := writeFrame(peer.bw, body)
	if werr == nil {
		werr = peer.bw.Flush()
	}
	t.sent[idx].Add(1)
	peer.wmu.Unlock()
	t.stats.framesOut.Add(1)
	t.stats.bytesOut.Add(uint64(len(body)))
	if werr != nil && !peer.left.Load() && !t.worldDone.Load() && !t.closing.Load() {
		t.fleetAbort("write to member %d: %v", idx, werr)
		panic(errAborted)
	}
}

func (t *TCPTransport) sendCtl(peer *tcpPeer, m *ctlMsg) error {
	body, err := appendCtlFrame(nil, m)
	if err != nil {
		return err
	}
	peer.wmu.Lock()
	defer peer.wmu.Unlock()
	if err := writeFrame(peer.bw, body); err != nil {
		return err
	}
	return peer.bw.Flush()
}

// readLoop drains one mesh connection: data frames become local
// deposits, control frames drive the bound sweeps and lifecycle.
func (t *TCPTransport) readLoop(peer *tcpPeer) {
	defer t.wg.Done()
	br := bufio.NewReader(peer.conn)
	for {
		body, err := readFrame(br)
		if err != nil {
			t.peerGone(peer, err)
			return
		}
		t.stats.framesIn.Add(1)
		t.stats.bytesIn.Add(uint64(len(body)))
		dest, msg, ctl, err := decodeFrame(body)
		if err != nil {
			t.fleetAbort("poisoned frame from member %d: %v", peer.idx, err)
			return
		}
		if ctl == nil {
			if dest >= t.opts.P || t.rt.mailboxes[dest] == nil {
				t.fleetAbort("misrouted frame from member %d for rank %d", peer.idx, dest)
				return
			}
			t.recvd[peer.idx].Add(1)
			t.gen.Add(1)
			t.rt.depositLocal(dest, msg)
			continue
		}
		switch ctl.T {
		case "breq":
			t.handleBoundReq(peer, ctl.Req)
		case "bresp":
			t.boundMu.Lock()
			ch := t.boundCh[ctl.Req]
			delete(t.boundCh, ctl.Req)
			t.boundMu.Unlock()
			if ch != nil {
				ch <- ctl
			}
		case "leaving":
			// Planned process exit: every rank it hosted crash-stopped.
			peer.left.Store(true)
			t.gen.Add(1)
			t.rt.bump()
			if o := t.rt.obs; o != nil {
				o.Emit(obs.Event{
					Kind: obs.KindFault, Rank: peer.lo,
					Note: fmt.Sprintf("peer-exit: member %d (ranks %d-%d) crash-stopped and left the fleet", peer.idx, peer.lo, peer.hi),
				})
			}
			t.logf("member %d (ranks %d-%d) left (planned)", peer.idx, peer.lo, peer.hi)
		case "abort":
			t.abortLocalOnly("aborted by member %d", peer.idx)
			return
		}
	}
}

// peerGone handles a mesh connection closing. Expected after a planned
// leave or once the world finished; otherwise the peer was killed
// without warning — journal it as a crash and abort (without the shared
// fault plan the survivors have no oracle to recover with).
func (t *TCPTransport) peerGone(peer *tcpPeer, err error) {
	peer.eof.Store(true)
	t.gen.Add(1)
	t.rt.bump()
	if peer.left.Load() || t.finishing.Load() || t.worldDone.Load() ||
		t.closing.Load() || t.rt.aborted.Load() {
		// A peer that finished the run ahead of us closes its mesh
		// connections on exit; once our own result exchange has begun
		// that EOF is the normal shutdown order, not a crash. A peer
		// that truly died mid-exchange surfaces as the coordinator
		// timeout in finish instead.
		return
	}
	if o := t.rt.obs; o != nil {
		o.Emit(obs.Event{
			Kind: obs.KindFault, Rank: peer.lo,
			Note: fmt.Sprintf("peer-lost: member %d (ranks %d-%d) died without notice: %v", peer.idx, peer.lo, peer.hi, err),
		})
	}
	t.fleetAbort("member %d (ranks %d-%d) lost: %v", peer.idx, peer.lo, peer.hi, err)
}

// handleBoundReq answers a peer's stability query: the generation is
// loaded before the bound so any interleaved change makes the next
// sweep's generation differ (the sweep then retries).
func (t *TCPTransport) handleBoundReq(peer *tcpPeer, req uint64) {
	gen := t.gen.Load()
	hasBound, bound := t.localBound()
	n := len(t.members)
	m := &ctlMsg{
		T: "bresp", Req: req, HasBound: hasBound, Bound: int64(bound), Gen: gen,
		Sent: make([]uint64, n), Recvd: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		m.Sent[i] = t.sent[i].Load()
		m.Recvd[i] = t.recvd[i].Load()
	}
	if err := t.sendCtl(peer, m); err != nil && !peer.left.Load() && !t.closing.Load() && !t.worldDone.Load() {
		t.fleetAbort("bound response to member %d: %v", peer.idx, err)
	}
}

// localBound computes the minimum future-influence bound over the ranks
// hosted here — the remote half of lbtsSafe, answered for a peer. Same
// rules as the local scan: active ranks bound at clock+alpha, blocked
// ranks at max(clock, earliest matching arrival)+alpha (no matching
// pending message defers to the rank that will eventually send one),
// finalizing/done ranks are exempt.
func (t *TCPTransport) localBound() (bool, vtime.Time) {
	rt := t.rt
	alpha := vtime.Time(rt.model.Alpha)
	has, min := false, vtime.Time(0)
	consider := func(b vtime.Time) {
		if !has || b < min {
			has, min = true, b
		}
	}
	for _, r := range rt.local {
		switch rankState(rt.states[r].Load()) {
		case stateDone, stateFinalizing:
			continue
		case stateActive:
			consider(rt.procs[r].Clock.Now() + alpha)
		default:
			proc := rt.procs[r]
			bound, ok := rt.mailboxes[r].minArriveMatching(
				CommID(proc.blockedComm.Load()),
				int(proc.blockedSrc.Load()),
				int(proc.blockedTag.Load()),
			)
			if !ok {
				continue
			}
			if c := proc.Clock.Now(); c > bound {
				bound = c
			}
			consider(bound + alpha)
		}
	}
	return has, min
}

// sweep queries every live peer once. ok=false means a peer is mid-
// leave (announced but not yet drained) or timed out — retry later.
func (t *TCPTransport) sweep() (map[int]*ctlMsg, bool) {
	t.stats.sweeps.Add(1)
	snaps := map[int]*ctlMsg{}
	type pending struct {
		idx int
		ch  chan *ctlMsg
	}
	var waits []pending
	for idx, peer := range t.peers {
		if peer.left.Load() || peer.eof.Load() {
			if peer.left.Load() && !peer.eof.Load() {
				// Announced leave still draining: counters cannot
				// balance yet.
				return nil, false
			}
			continue
		}
		req := t.reqID.Add(1)
		ch := make(chan *ctlMsg, 1)
		t.boundMu.Lock()
		t.boundCh[req] = ch
		t.boundMu.Unlock()
		if err := t.sendCtl(peer, &ctlMsg{T: "breq", Req: req}); err != nil {
			t.boundMu.Lock()
			delete(t.boundCh, req)
			t.boundMu.Unlock()
			return nil, false
		}
		waits = append(waits, pending{idx, ch})
	}
	deadline := time.After(250 * time.Millisecond)
	for _, w := range waits {
		select {
		case resp := <-w.ch:
			snaps[w.idx] = resp
		case <-deadline:
			return nil, false
		case <-t.abortCh:
			return nil, false
		}
	}
	return snaps, true
}

// remoteSafe implements the transport half of the conservative matcher:
// true only when a counter-stable global snapshot shows no remote rank
// able to produce a message arriving before at.
func (t *TCPTransport) remoteSafe(self int, at vtime.Time) bool {
	if len(t.peers) == 0 {
		return true
	}
	var prev map[int]*ctlMsg
	var prevGen uint64
	for {
		if t.rt.aborted.Load() {
			return false
		}
		gen := t.gen.Load()
		snaps, ok := t.sweep()
		if !ok {
			prev = nil
			time.Sleep(500 * time.Microsecond)
			continue
		}
		if prev != nil && prevGen == gen && sweepsEqualGen(prev, snaps) && t.balanced(snaps) {
			for _, s := range snaps {
				if s.HasBound && vtime.Time(s.Bound) < at {
					return false
				}
			}
			return true
		}
		prev, prevGen = snaps, gen
		time.Sleep(200 * time.Microsecond)
	}
}

// sweepsEqualGen reports whether two sweeps saw identical generations
// from the same peer set.
func sweepsEqualGen(a, b map[int]*ctlMsg) bool {
	if len(a) != len(b) {
		return false
	}
	for idx, sa := range a {
		sb := b[idx]
		if sb == nil || sa.Gen != sb.Gen {
			return false
		}
	}
	return true
}

// balanced checks the global counter matrix: every data frame sent by
// any member has been received (no frame in flight ⇒ the bound
// snapshot is a consistent cut). Members that have left and drained
// are excluded — their frames are all accounted for on the receive
// side and they will never send again.
func (t *TCPTransport) balanced(snaps map[int]*ctlMsg) bool {
	n := len(t.members)
	live := make([]bool, n)
	sent := make([][]uint64, n)
	recvd := make([][]uint64, n)
	live[t.selfIdx] = true
	sent[t.selfIdx] = make([]uint64, n)
	recvd[t.selfIdx] = make([]uint64, n)
	for i := 0; i < n; i++ {
		sent[t.selfIdx][i] = t.sent[i].Load()
		recvd[t.selfIdx][i] = t.recvd[i].Load()
	}
	for idx, s := range snaps {
		if len(s.Sent) != n || len(s.Recvd) != n {
			return false
		}
		live[idx] = true
		sent[idx], recvd[idx] = s.Sent, s.Recvd
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || !live[i] || !live[j] {
				continue
			}
			if sent[i][j] != recvd[j][i] {
				return false
			}
		}
	}
	return true
}

func (t *TCPTransport) noteState(int) { t.gen.Add(1) }

func (t *TCPTransport) allocComm(n int) CommID {
	if err := t.sendCoord(&coordMsg{T: "alloc", N: n}); err != nil {
		t.fleetAbort("comm alloc: %v", err)
		panic(errAborted)
	}
	select {
	case base := <-t.allocCh:
		return CommID(base)
	case <-t.abortCh:
		panic(errAborted)
	}
}

// coordLoop dispatches post-start coordinator messages.
func (t *TCPTransport) coordLoop() {
	defer t.wg.Done()
	for {
		var m coordMsg
		if err := t.coordDec.Decode(&m); err != nil {
			if !t.worldDone.Load() && !t.closing.Load() && !t.rt.aborted.Load() {
				t.abortLocalOnly("rendezvous connection lost: %v", err)
			}
			return
		}
		switch m.T {
		case "allocr":
			t.allocCh <- m.Base
		case "final":
			select {
			case t.finalCh <- &m:
			default:
			}
		case "abort":
			t.abortLocalOnly("fleet aborted: %s", m.Msg)
			return
		}
	}
}

func (t *TCPTransport) noteAbort() {
	t.fleetAbort("local rank failure")
}

// fleetAbort propagates a fatal failure everywhere: local wakeups, a
// control frame to every mesh peer, and an abort line to the
// coordinator (which relays to members this process never meshed
// with).
func (t *TCPTransport) fleetAbort(format string, args ...any) {
	t.abortOne.Do(func() {
		msg := fmt.Sprintf(format, args...)
		t.abortMsg.Store(&msg)
		t.logf("fleet abort: %s", msg)
		if t.rt != nil {
			t.rt.abortLocal()
		}
		close(t.abortCh)
		for _, p := range t.peers {
			t.sendCtl(p, &ctlMsg{T: "abort"})
		}
		t.sendCoord(&coordMsg{T: "abort", Msg: msg})
	})
}

// abortLocalOnly unwinds this process after a remote abort (no
// rebroadcast: the origin already told everyone).
func (t *TCPTransport) abortLocalOnly(format string, args ...any) {
	t.abortOne.Do(func() {
		msg := fmt.Sprintf(format, args...)
		t.abortMsg.Store(&msg)
		t.logf("%s", msg)
		if t.rt != nil {
			t.rt.abortLocal()
		}
		close(t.abortCh)
	})
}

// noteDeparted tracks local crash-stops. Once every rank hosted here is
// gone the process leaves the fleet: it announces the exit on all
// connections (with its final clocks, so results stay complete), then
// — crash = killed process — SIGKILLs itself when ExitOnCrash is set.
func (t *TCPTransport) noteDeparted(rank int) {
	t.depMu.Lock()
	t.depLocal[rank] = true
	all := len(t.depLocal) == len(t.rt.local)
	t.depMu.Unlock()
	if !all || !t.opts.ExitOnCrash {
		return
	}
	ranks := append([]int(nil), t.rt.local...)
	clocks := make([]int64, len(ranks))
	ledgers := make([][]vtime.Duration, len(ranks))
	for i, r := range ranks {
		clocks[i] = int64(t.rt.procs[r].Clock.Now())
		ledgers[i] = t.rt.procs[r].Ledger.Snapshot()
	}
	for _, p := range t.peers {
		t.sendCtl(p, &ctlMsg{T: "leaving", Ranks: ranks})
	}
	t.sendCoord(&coordMsg{
		T: "leaving", Ranks: ranks, Clocks: clocks, Ledgers: ledgers, Departed: ranks,
	})
	t.logf("all local ranks crash-stopped; leaving the fleet (SIGKILL self)")
	if f := t.opts.OnCrashExit; f != nil {
		f()
	}
	// Closing the connections first pushes every queued byte to the
	// kernel with a clean FIN, so peers see an orderly drain, then the
	// process dies exactly as a killed rank-process would.
	for _, p := range t.peers {
		p.conn.Close()
	}
	t.coord.Close()
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
}

func (t *TCPTransport) finish(res *Result, departed []bool) (*Result, error) {
	t.finishing.Store(true)
	ranks := append([]int(nil), t.rt.local...)
	clocks := make([]int64, len(ranks))
	ledgers := make([][]vtime.Duration, len(ranks))
	var dep []int
	for i, r := range ranks {
		clocks[i] = int64(res.Clocks[r])
		ledgers[i] = res.Ledgers[r].Snapshot()
		if departed[r] {
			dep = append(dep, r)
		}
	}
	if err := t.sendCoord(&coordMsg{
		T: "result", Ranks: ranks, Clocks: clocks, Ledgers: ledgers, Departed: dep,
	}); err != nil {
		return nil, fmt.Errorf("mpi: result exchange: %w", err)
	}
	var final *coordMsg
	select {
	case final = <-t.finalCh:
	case <-t.abortCh:
		msg := "fleet aborted"
		if p := t.abortMsg.Load(); p != nil {
			msg = *p
		}
		return nil, errors.New("mpi: " + msg)
	case <-time.After(t.opts.DialTimeout + 30*time.Second):
		return nil, fmt.Errorf("mpi: timed out awaiting fleet results")
	}
	if len(final.Clocks) != t.opts.P || len(final.Ledgers) != t.opts.P {
		return nil, fmt.Errorf("mpi: malformed final results")
	}
	for r := 0; r < t.opts.P; r++ {
		res.Clocks[r] = vtime.Time(final.Clocks[r])
		if res.Ledgers[r] == nil {
			res.Ledgers[r] = &vtime.Ledger{}
			res.Ledgers[r].Restore(final.Ledgers[r])
		}
	}
	res.Departed = final.Departed
	res.Makespan = vtime.Duration(res.MaxClock())
	t.worldDone.Store(true)
	return res, nil
}

func (t *TCPTransport) close() {
	if t.closing.Swap(true) {
		return
	}
	close(t.stopTick)
	for _, p := range t.peers {
		p.conn.Close()
	}
	if t.coord != nil {
		t.coord.Close()
	}
	if t.ln != nil {
		t.ln.Close()
	}
	if t.srv != nil {
		t.srv.close()
	}
}

// --- rendezvous coordinator ------------------------------------------------

// rendezvousServer forms the fleet and then serves three tiny RPCs:
// world-unique communicator allocation, result aggregation, and abort
// relay. It runs inside whichever process won the bind race.
type rendezvousServer struct {
	ln      net.Listener
	p       int
	session string

	mu       sync.Mutex
	regs     []*regEntry
	started  bool
	ready    int
	nextComm int64
	results  map[int]*coordMsg
	fp       string
	fpSet    bool
	aborted  bool
	finalOut bool
	closed   atomic.Bool
}

type regEntry struct {
	spec memberSpec
	conn net.Conn
	wmu  sync.Mutex
	done bool // result or leaving received
}

func newRendezvousServer(ln net.Listener, p int, session string) *rendezvousServer {
	if session == "" {
		var b [8]byte
		rand.Read(b[:])
		session = hex.EncodeToString(b[:])
	}
	return &rendezvousServer{
		ln: ln, p: p, session: session,
		nextComm: int64(commUserBase),
		results:  map[int]*coordMsg{},
	}
}

func (s *rendezvousServer) close() {
	if !s.closed.Swap(true) {
		s.ln.Close()
	}
}

func (s *rendezvousServer) serve() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

func (s *rendezvousServer) send(e *regEntry, m *coordMsg) {
	data, err := json.Marshal(m)
	if err != nil {
		return
	}
	data = append(data, '\n')
	e.wmu.Lock()
	e.conn.Write(data)
	e.wmu.Unlock()
}

func (s *rendezvousServer) sendErr(conn net.Conn, format string, args ...any) {
	data, _ := json.Marshal(&coordMsg{T: "err", Msg: fmt.Sprintf(format, args...)})
	conn.Write(append(data, '\n'))
	conn.Close()
}

func (s *rendezvousServer) handle(conn net.Conn) {
	dec := json.NewDecoder(conn)
	var me *regEntry
	for {
		var m coordMsg
		if err := dec.Decode(&m); err != nil {
			s.memberLost(me)
			return
		}
		switch m.T {
		case "register":
			if me != nil {
				s.sendErr(conn, "duplicate registration")
				return
			}
			var err error
			if me, err = s.register(&m, conn); err != nil {
				s.sendErr(conn, "%v", err)
				// A bad registration (config mismatch, overlapping
				// ranges) is fatal for the whole rendezvous: the fleet
				// can never complete, so release the waiting members.
				s.abort(fmt.Sprintf("rejected member: %v", err))
				return
			}
		case "ready":
			s.memberReady()
		case "alloc":
			s.mu.Lock()
			base := s.nextComm
			if m.N > 0 {
				s.nextComm += int64(m.N)
			}
			s.mu.Unlock()
			s.send(me, &coordMsg{T: "allocr", Base: base})
		case "result", "leaving":
			s.memberDone(me, &m)
			if m.T == "leaving" {
				// The connection is about to die with the process; the
				// member never awaits a final.
				return
			}
		case "abort":
			s.abort(m.Msg)
		}
	}
}

// register admits one member; when the ranges exactly tile [0,P) the
// roster goes out.
func (s *rendezvousServer) register(m *coordMsg, conn net.Conn) (*regEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return nil, fmt.Errorf("fleet already formed")
	}
	if m.P != s.p && s.p != 0 {
		return nil, fmt.Errorf("world size mismatch: coordinator has P=%d, member registered P=%d", s.p, m.P)
	}
	if s.fpSet && m.FP != s.fp {
		return nil, fmt.Errorf("config fingerprint mismatch (different seeds/plans across the fleet?)")
	}
	s.fp, s.fpSet = m.FP, true
	if m.Lo < 0 || m.Hi < m.Lo || m.Hi >= s.p {
		return nil, fmt.Errorf("invalid rank range %d..%d for P=%d", m.Lo, m.Hi, s.p)
	}
	for _, r := range s.regs {
		if m.Lo <= r.spec.Hi && r.spec.Lo <= m.Hi {
			return nil, fmt.Errorf("rank range %d..%d overlaps member %d..%d", m.Lo, m.Hi, r.spec.Lo, r.spec.Hi)
		}
	}
	addr := m.Addr
	if host, port, err := net.SplitHostPort(addr); err == nil {
		if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
			// The member listens on the wildcard address: advertise the
			// address the coordinator actually sees it from.
			if rhost, _, err := net.SplitHostPort(conn.RemoteAddr().String()); err == nil {
				addr = net.JoinHostPort(rhost, port)
			}
		}
	}
	e := &regEntry{spec: memberSpec{Lo: m.Lo, Hi: m.Hi, Addr: addr}, conn: conn}
	s.regs = append(s.regs, e)
	covered := 0
	for _, r := range s.regs {
		covered += r.spec.Hi - r.spec.Lo + 1
	}
	if covered == s.p {
		sort.Slice(s.regs, func(i, j int) bool { return s.regs[i].spec.Lo < s.regs[j].spec.Lo })
		s.started = true
		roster := make([]memberSpec, len(s.regs))
		for i, r := range s.regs {
			roster[i] = r.spec
		}
		for _, r := range s.regs {
			s.send(r, &coordMsg{T: "roster", Session: s.session, Members: roster})
		}
	}
	return e, nil
}

func (s *rendezvousServer) memberReady() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ready++
	if s.ready == len(s.regs) && s.started {
		for _, r := range s.regs {
			s.send(r, &coordMsg{T: "start"})
		}
	}
}

func (s *rendezvousServer) memberIdx(e *regEntry) int {
	for i, r := range s.regs {
		if r == e {
			return i
		}
	}
	return -1
}

// memberDone records a member's results ("result") or last words
// ("leaving"); when every member has reported, the merged final goes
// out to the members still connected.
func (s *rendezvousServer) memberDone(e *regEntry, m *coordMsg) {
	if e == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.memberIdx(e)
	if idx < 0 || e.done {
		return
	}
	e.done = true
	s.results[idx] = m
	if len(s.results) < len(s.regs) {
		return
	}
	final := &coordMsg{
		T:       "final",
		Clocks:  make([]int64, s.p),
		Ledgers: make([][]vtime.Duration, s.p),
	}
	depSet := map[int]bool{}
	for _, res := range s.results {
		for i, r := range res.Ranks {
			if r < 0 || r >= s.p {
				continue
			}
			if i < len(res.Clocks) {
				final.Clocks[r] = res.Clocks[i]
			}
			if i < len(res.Ledgers) {
				final.Ledgers[r] = res.Ledgers[i]
			}
		}
		for _, r := range res.Departed {
			depSet[r] = true
		}
	}
	for r := range depSet {
		final.Departed = append(final.Departed, r)
	}
	sort.Ints(final.Departed)
	for r := 0; r < s.p; r++ {
		if final.Ledgers[r] == nil {
			final.Ledgers[r] = []vtime.Duration{}
		}
	}
	s.finalOut = true
	for _, r := range s.regs {
		if leavingMsg, left := s.results[s.memberIdx(r)]; left && leavingMsg.T == "leaving" {
			continue
		}
		s.send(r, final)
	}
	go s.close()
}

// memberLost handles a rendezvous connection dying. Benign after the
// member reported (or the fleet finished/aborted); fatal otherwise.
func (s *rendezvousServer) memberLost(e *regEntry) {
	if e == nil {
		return
	}
	s.mu.Lock()
	lost := !e.done && !s.aborted && !s.finalOut
	s.mu.Unlock()
	if lost {
		s.abort(fmt.Sprintf("member (ranks %d-%d) lost before reporting results", e.spec.Lo, e.spec.Hi))
	}
}

func (s *rendezvousServer) abort(msg string) {
	s.mu.Lock()
	if s.aborted {
		s.mu.Unlock()
		return
	}
	s.aborted = true
	regs := append([]*regEntry(nil), s.regs...)
	s.mu.Unlock()
	for _, r := range regs {
		s.send(r, &coordMsg{T: "abort", Msg: msg})
	}
	go s.close()
}
