package mpi

import (
	"sync"
	"sync/atomic"

	"chameleon/internal/vtime"
)

// message is one in-flight point-to-point message.
type message struct {
	comm    CommID
	source  int
	tag     int
	bytes   int
	payload any
	// arrive is the virtual time at which the message is fully available
	// at the receiver (sender clock at send + alpha-beta transfer time).
	arrive vtime.Time
	// origin/seq/sendVT are the piggybacked causal span context: the
	// sender's world rank, its per-rank send sequence number (1-based; 0
	// means causal capture was off at send time), and its clock at the
	// moment of injection. The receiver turns them into an obs.Edge when
	// the match completes.
	origin int
	seq    uint64
	sendVT vtime.Time
}

// mailbox is a rank's incoming message queue with MPI matching semantics:
// Recv matches on (communicator, source-or-ANY, tag-or-ANY) and respects
// non-overtaking order per source. ANY_SOURCE picks the buffered match
// with the earliest virtual arrival time to keep virtual-time runs as
// deterministic as the schedule allows.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []message
	// aborted points at the runtime's abort flag so blocked receivers
	// unwind when a peer rank panics instead of deadlocking the run.
	aborted *atomic.Bool
}

func newMailbox(aborted *atomic.Bool) *mailbox {
	m := &mailbox{aborted: aborted}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// deposit enqueues a message and wakes blocked receivers.
func (m *mailbox) deposit(msg message) {
	m.mu.Lock()
	m.msgs = append(m.msgs, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

func matches(msg *message, comm CommID, source, tag int) bool {
	if msg.comm != comm {
		return false
	}
	if source != AnySource && msg.source != source {
		return false
	}
	if tag != AnyTag && msg.tag != tag {
		return false
	}
	return true
}

// take blocks until a message matching (comm, source, tag) from the
// given specific source is available and removes it from the queue.
// Specific-source matching needs no conservation check: per-source FIFO
// makes the oldest match the only legal one.
func (m *mailbox) take(comm CommID, source, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i := range m.msgs {
			if matches(&m.msgs[i], comm, source, tag) {
				msg := m.msgs[i]
				m.msgs = append(m.msgs[:i], m.msgs[i+1:]...)
				return msg
			}
		}
		if m.aborted != nil && m.aborted.Load() {
			panic(errAborted)
		}
		m.cond.Wait()
	}
}

// scanAny returns the index of the best wildcard candidate: among each
// source's oldest matching message (per-source FIFO preserves
// non-overtaking), the earliest virtual arrival wins, ties breaking on
// the lower source rank for determinism. Returns -1 when no message
// matches. Caller holds m.mu.
func (m *mailbox) scanAny(comm CommID, tag int) int {
	best := -1
	var seen map[int]bool
	for i := range m.msgs {
		if !matches(&m.msgs[i], comm, AnySource, tag) {
			continue
		}
		if seen == nil {
			seen = make(map[int]bool)
		}
		if seen[m.msgs[i].source] {
			continue
		}
		seen[m.msgs[i].source] = true
		if best == -1 ||
			m.msgs[i].arrive < m.msgs[best].arrive ||
			(m.msgs[i].arrive == m.msgs[best].arrive && m.msgs[i].source < m.msgs[best].source) {
			best = i
		}
	}
	return best
}

// minArrive returns the earliest arrival among queued messages, used by
// the conservative matcher to bound a blocked rank's future influence.
func (m *mailbox) minArrive() (vtime.Time, bool) {
	return m.minArriveMatching(AnyComm, AnySource, AnyTag)
}

// AnyComm matches every communicator in minArriveMatching.
const AnyComm CommID = -1

// minArriveMatching returns the earliest arrival among queued messages
// that match the given (comm, source, tag) pattern — the only messages
// that can unblock a receiver waiting on that pattern. Non-matching
// messages are consumed later, after a matching one has already
// unblocked the rank, so they never accelerate it.
func (m *mailbox) minArriveMatching(comm CommID, source, tag int) (vtime.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	min, ok := vtime.Time(0), false
	for i := range m.msgs {
		if comm != AnyComm && !matches(&m.msgs[i], comm, source, tag) {
			continue
		}
		if !ok || m.msgs[i].arrive < min {
			min, ok = m.msgs[i].arrive, true
		}
	}
	return min, ok
}

// pending returns the number of queued messages (diagnostics / tests).
func (m *mailbox) pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.msgs)
}
