package mpi

// OpCode identifies an MPI operation at the interposition layer and in
// trace events.
type OpCode uint8

// MPI operations supported by the simulated runtime.
const (
	OpNone OpCode = iota
	OpSend
	OpRecv
	OpIsend
	OpIrecv
	OpWait
	OpSendrecv
	OpBarrier
	OpBcast
	OpReduce
	OpAllreduce
	OpGather
	OpAllgather
	OpScatter
	OpAlltoall
	OpFinalize
	numOpCodes
)

var opNames = [...]string{
	"none", "Send", "Recv", "Isend", "Irecv", "Wait", "Sendrecv",
	"Barrier", "Bcast", "Reduce", "Allreduce", "Gather", "Allgather",
	"Scatter", "Alltoall", "Finalize",
}

func (o OpCode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// IsCollective reports whether the operation involves the whole
// communicator group.
func (o OpCode) IsCollective() bool {
	switch o {
	case OpBarrier, OpBcast, OpReduce, OpAllreduce, OpGather,
		OpAllgather, OpScatter, OpAlltoall, OpFinalize:
		return true
	}
	return false
}

// IsPointToPoint reports whether the operation has a single peer.
func (o OpCode) IsPointToPoint() bool {
	switch o {
	case OpSend, OpRecv, OpIsend, OpIrecv, OpSendrecv:
		return true
	}
	return false
}

// ParseOpCode maps an operation name back to its code (used by the trace
// deserializer). It returns OpNone for unknown names.
func ParseOpCode(name string) OpCode {
	for i, n := range opNames {
		if n == name {
			return OpCode(i)
		}
	}
	return OpNone
}
