package mpi

import (
	"fmt"
	"testing"

	"chameleon/internal/obs"
)

// lowbit returns the lowest set bit of v.
func lowbit(v int) int { return v & -v }

// runCausal executes body on p ranks with causal capture enabled and
// returns the body's edges (the finalize barrier's edges are excluded:
// they carry the op-derived "finalize" context, while raw collectives
// called from the body carry none).
func runCausal(t *testing.T, p int, body func(pr *Proc)) []obs.Edge {
	t.Helper()
	o := obs.New(obs.Options{CausalRanks: p})
	if _, err := Run(Config{P: p, Obs: o}, body); err != nil {
		t.Fatal(err)
	}
	var out []obs.Edge
	for _, e := range o.Causal.Edges() {
		if e.Ctx == "" {
			out = append(out, e)
		}
	}
	return out
}

// TestTreeEdgeCapture verifies every hop of treeBcast and treeReduceU64
// produces exactly one matched send/recv edge pair, for power-of-two and
// non-power-of-two rank counts. The binomial schedule rooted at 0 makes
// the expected hop set explicit: bcast sends parent→child
// (v−lowbit(v) → v), reduce sends child→parent (v → v−lowbit(v)), and
// rawBarrier is one reduce phase plus one bcast phase.
func TestTreeEdgeCapture(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			edges := runCausal(t, p, func(pr *Proc) {
				w := pr.World()
				w.RawBcastU64(0, 42)        // tag seq 0
				w.RawReduceU64(0, 7, OpSum) // tag seq 1
				w.RawBarrier()              // tag seq 2, phases 0+1
			})
			if p == 1 {
				if len(edges) != 0 {
					t.Fatalf("p=1: %d edges, want 0 (no hops in a single-rank tree)", len(edges))
				}
				return
			}
			// (from, to, tag) -> count. Tags are collTag(CommWorld, seq,
			// phase) = seq<<4|phase as allocated above.
			count := make(map[[3]int]int)
			for _, e := range edges {
				if e.Seq == 0 {
					t.Fatalf("edge without piggybacked seq: %+v", e)
				}
				if e.SendVT > e.ArriveVT || e.ArriveVT > e.RecvVT {
					t.Fatalf("edge times out of order: %+v", e)
				}
				count[[3]int{e.From, e.To, e.Tag}]++
			}
			var want [][3]int
			for v := 1; v < p; v++ {
				parent, child := v-lowbit(v), v
				want = append(want,
					[3]int{parent, child, 0<<4 | 0}, // bcast hop
					[3]int{child, parent, 1<<4 | 0}, // reduce hop
					[3]int{child, parent, 2<<4 | 0}, // barrier reduce phase
					[3]int{parent, child, 2<<4 | 1}, // barrier bcast phase
				)
			}
			for _, k := range want {
				if count[k] != 1 {
					t.Errorf("hop from=%d to=%d tag=%d: %d edges, want exactly 1",
						k[0], k[1], k[2], count[k])
				}
			}
			if len(edges) != len(want) {
				t.Errorf("%d edges, want %d", len(edges), len(want))
			}
		})
	}
}

// TestCausalDisabled proves the zero-cost discipline end to end: with no
// causal store (observer nil, or enabled without CausalRanks) the run
// records nothing and messages carry no stamp.
func TestCausalDisabled(t *testing.T) {
	body := func(pr *Proc) {
		w := pr.World()
		w.RawBcastU64(0, 1)
		w.RawBarrier()
	}
	if _, err := Run(Config{P: 4}, body); err != nil {
		t.Fatal(err)
	}
	o := obs.New(obs.Options{Metrics: true})
	if o.CausalStore() != nil {
		t.Fatal("CausalStore must be nil when CausalRanks is unset")
	}
	if _, err := Run(Config{P: 4, Obs: o}, body); err != nil {
		t.Fatal(err)
	}
	if n := o.Causal.EdgeCount(); n != 0 {
		t.Fatalf("disabled causal recorded %d edges", n)
	}
}

// TestCausalContextLabels checks the context API: explicit contexts
// label the edges recorded inside them, CausalContextDefault defers to
// an installed outer name, and the restore closure reinstates the
// previous context.
func TestCausalContextLabels(t *testing.T) {
	const p = 4
	o := obs.New(obs.Options{CausalRanks: p})
	_, err := Run(Config{P: p, Obs: o}, func(pr *Proc) {
		w := pr.World()
		restore := pr.CausalContext("vote", 3)
		// An inner default must NOT override the explicit outer name.
		restoreInner := pr.CausalContextDefault("merge", 9)
		w.RawBcastU64(0, 1)
		restoreInner()
		restore()
		// With no outer context the default applies.
		defer pr.CausalContextDefault("merge", 9)()
		w.RawBcastU64(0, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	byCtx := make(map[string]int)
	for _, e := range o.Causal.Edges() {
		byCtx[e.Ctx]++
		if e.Ctx == "vote" && e.CtxSeq != 3 {
			t.Fatalf("vote edge seq = %d, want 3", e.CtxSeq)
		}
		if e.Ctx == "merge" && e.CtxSeq != 9 {
			t.Fatalf("merge edge seq = %d, want 9", e.CtxSeq)
		}
	}
	if byCtx["vote"] != p-1 || byCtx["merge"] != p-1 {
		t.Fatalf("edges by ctx = %v, want %d vote and %d merge", byCtx, p-1, p-1)
	}
}
