package mpi

import (
	"chameleon/internal/obs"
)

// Fault-injection hooks. The runtime consults an optional fault.Injector
// at two seams: Compute (delay/slow perturbation of application work)
// and the marker barrier (crash-stop and membership changes). With no
// injector configured every branch below is skipped, so zero-fault runs
// take exactly the pre-fault code paths.

// crashExit is the panic value a crash-stop rank unwinds with; Run
// recognizes it as a scheduled departure, not a failure.
type crashExit struct {
	marker int
}

// shrunkCommBase is the CommID space for post-crash shrunken world
// views, indexed by membership epoch. It sits far above commUserBase so
// user Dup IDs can never collide.
const shrunkCommBase CommID = 1 << 20

// faultTag namespaces the survivors' marker-barrier traffic per marker
// so successive shrunken barriers can never cross-match. Bit 56 keeps it
// clear of every other internal tag family.
func faultTag(marker, phase int) int {
	return 1<<56 | marker<<4 | phase
}

// groupFinalizeTag is the tag block for the survivors' finalize barrier.
const groupFinalizeTag = 1<<56 | 1<<18

// AliveRanks returns the sorted world ranks still alive at this rank's
// current marker view, or nil while membership is full (which is also
// the answer whenever fault injection is off). The slice is shared
// read-only state; callers must not mutate it.
func (p *Proc) AliveRanks() []int { return p.aliveView }

// Epoch returns this rank's current membership epoch (0 = full
// membership, +1 per crash that has fired).
func (p *Proc) Epoch() int { return p.epoch }

// Departed reports whether rank has crashed as of this rank's view.
func (p *Proc) Departed(rank int) bool {
	return p.deadView != nil && p.deadView[rank]
}

// ShrunkWorld returns a world-like communicator over the surviving
// ranks. While membership is full it is CommWorld itself; after a crash
// it is a fresh communicator (distinct per epoch) whose group is the
// alive list. Failure-aware application bodies run their collectives on
// it so departed ranks are never waited on.
func (p *Proc) ShrunkWorld() *Comm {
	if p.aliveView == nil {
		return p.world
	}
	if p.shrunk == nil || p.shrunk.id != shrunkCommBase+CommID(p.epoch) {
		self := TreePos(p.aliveView, p.rank)
		p.shrunk = &Comm{
			p:     p,
			id:    shrunkCommBase + CommID(p.epoch),
			group: p.aliveView,
			self:  self,
		}
	}
	return p.shrunk
}

// faultMarker runs the fault protocol for one marker barrier and reports
// whether it fully handled the barrier. Called only when an injector is
// configured. Order of business:
//
//  1. If this rank is scheduled to die at (or before) this marker, it
//     journals the crash and unwinds with crashExit — before the
//     interposer sees the barrier, so the tracer never records a marker
//     the rank did not complete.
//  2. Otherwise the rank refreshes its membership view from the
//     injector (the shared crash schedule doubles as a perfect failure
//     detector, so every survivor switches views at the same marker).
//  3. With full membership it reports false and the caller runs the
//     ordinary barrier — bit-identical to the no-fault path. With
//     reduced membership it runs a group barrier over the survivors
//     under the same interposer callbacks the ordinary path would fire.
func (p *Proc) faultMarker() bool {
	in := p.rt.fault
	p.markerSeq++
	m := p.markerSeq
	if cm := in.CrashMarker(p.rank); cm >= 0 && m >= cm {
		if o := p.rt.obs; o != nil {
			o.Emit(obs.Event{
				Kind: obs.KindFault, Rank: p.rank, VT: int64(p.Clock.Now()),
				Marker: m, Note: "crash-stop",
			})
			if mt := p.rt.met; mt != nil {
				mt.crashes.Inc()
			}
		}
		panic(crashExit{marker: m})
	}
	alive := in.AliveAfter(m)
	if len(alive) == p.rt.p {
		p.aliveView, p.epoch, p.deadView = nil, 0, nil
		return false
	}
	p.aliveView = alive
	p.epoch = in.EpochAt(m)
	dead := make(map[int]bool, p.rt.p-len(alive))
	next := 0
	for r := 0; r < p.rt.p; r++ {
		if next < len(alive) && alive[next] == r {
			next++
			continue
		}
		dead[r] = true
	}
	p.deadView = dead
	ci := &CallInfo{Op: OpBarrier, Comm: CommMarker, Dest: NoPeer, Src: NoPeer, Root: NoPeer}
	start := p.opBegin(ci)
	GroupBarrier(p, alive, faultTag(m, 0))
	p.opEnd(ci, start)
	return true
}
