package mpi

import (
	"fmt"
	"sync"
	"testing"

	"chameleon/internal/vtime"
)

// run is a test helper executing body on p ranks with the default model.
func run(t *testing.T, p int, body func(*Proc)) *Result {
	t.Helper()
	res, err := Run(Config{P: p}, body)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunInvalidConfig(t *testing.T) {
	if _, err := Run(Config{P: 0}, func(*Proc) {}); err == nil {
		t.Fatalf("P=0 accepted")
	}
	if _, err := Run(Config{P: -3}, func(*Proc) {}); err == nil {
		t.Fatalf("negative P accepted")
	}
}

func TestRankAndSize(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	run(t, 5, func(p *Proc) {
		if p.Size() != 5 {
			t.Errorf("Size = %d", p.Size())
		}
		if p.World().Rank() != p.Rank() || p.World().Size() != 5 {
			t.Errorf("world handle inconsistent")
		}
		mu.Lock()
		seen[p.Rank()] = true
		mu.Unlock()
	})
	if len(seen) != 5 {
		t.Fatalf("ranks seen: %v", seen)
	}
}

func TestSendRecvPayload(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		if p.Rank() == 0 {
			w.Send(1, 42, 8, "hello")
		} else {
			msg := w.Recv(0, 42)
			if msg.Payload.(string) != "hello" || msg.Source != 0 || msg.Tag != 42 || msg.Bytes != 8 {
				t.Errorf("bad message: %+v", msg)
			}
		}
	})
}

func TestRecvMatchesTag(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		if p.Rank() == 0 {
			w.Send(1, 1, 0, "first")
			w.Send(1, 2, 0, "second")
		} else {
			// Receive out of tag order: tag matching must select the
			// right message even though "first" arrived earlier.
			if got := w.Recv(0, 2).Payload.(string); got != "second" {
				t.Errorf("tag 2 got %q", got)
			}
			if got := w.Recv(0, 1).Payload.(string); got != "first" {
				t.Errorf("tag 1 got %q", got)
			}
		}
	})
}

func TestNonOvertakingPerSource(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		if p.Rank() == 0 {
			for i := 0; i < 10; i++ {
				w.Send(1, 7, 0, i)
			}
		} else {
			for i := 0; i < 10; i++ {
				if got := w.Recv(0, 7).Payload.(int); got != i {
					t.Errorf("message %d arrived as %d", i, got)
				}
			}
		}
	})
}

func TestAnyTag(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		if p.Rank() == 0 {
			w.Send(1, 5, 0, "x")
		} else {
			if got := w.Recv(0, AnyTag); got.Tag != 5 {
				t.Errorf("AnyTag match: %+v", got)
			}
		}
	})
}

func TestAnySourceVirtualOrder(t *testing.T) {
	// The conservative matcher must deliver wildcard receives in virtual
	// arrival order regardless of goroutine scheduling: the rank that
	// computes least sends first in virtual time.
	run(t, 4, func(p *Proc) {
		w := p.World()
		if p.Rank() == 0 {
			for i := 1; i < 4; i++ {
				msg := w.Recv(AnySource, 1)
				if msg.Source != i {
					t.Errorf("wildcard match %d from rank %d, want %d", i, msg.Source, i)
				}
			}
		} else {
			// Rank r computes r milliseconds before sending.
			p.Compute(vtime.Duration(p.Rank()) * vtime.Millisecond)
			w.Send(0, 1, 0, nil)
		}
	})
}

func TestSendrecv(t *testing.T) {
	res := run(t, 4, func(p *Proc) {
		w := p.World()
		next := (p.Rank() + 1) % 4
		prev := (p.Rank() + 3) % 4
		msg := w.Sendrecv(next, 9, 16, p.Rank(), prev, 9)
		if msg.Payload.(int) != prev {
			t.Errorf("ring sendrecv got %v, want %d", msg.Payload, prev)
		}
	})
	if res.Makespan <= 0 {
		t.Fatalf("no virtual time elapsed")
	}
}

func TestIsendIrecvWait(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		if p.Rank() == 0 {
			req := w.Isend(1, 3, 4, "async")
			w.Wait(req)
		} else {
			req := w.Irecv(0, 3)
			msg := w.Wait(req)
			if msg.Payload.(string) != "async" {
				t.Errorf("irecv: %+v", msg)
			}
			// Waiting again returns the same message without blocking.
			if again := w.Wait(req); again.Payload.(string) != "async" {
				t.Errorf("double wait: %+v", again)
			}
		}
	})
}

func TestWaitall(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		if p.Rank() == 0 {
			w.Send(1, 1, 0, "a")
			w.Send(1, 2, 0, "b")
		} else {
			r1 := w.Irecv(0, 1)
			r2 := w.Irecv(0, 2)
			w.Waitall(r1, r2)
		}
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	clocks := make([]vtime.Time, 4)
	run(t, 4, func(p *Proc) {
		// Stagger the ranks, then barrier.
		p.Compute(vtime.Duration(p.Rank()) * vtime.Millisecond)
		p.World().Barrier()
		clocks[p.Rank()] = p.Clock.Now()
	})
	// Everyone must be at or past the slowest entrant (3ms).
	for r, c := range clocks {
		if c < vtime.Time(3*vtime.Millisecond) {
			t.Fatalf("rank %d exited barrier at %v, before slowest entry", r, c)
		}
	}
}

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		p := p
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			run(t, p, func(proc *Proc) {
				var payload any
				if proc.Rank() == 2%p {
					payload = "root-data"
				}
				got := proc.World().Bcast(2%p, 64, payload)
				if got.(string) != "root-data" {
					t.Errorf("rank %d bcast got %v", proc.Rank(), got)
				}
			})
		})
	}
}

func TestReduce(t *testing.T) {
	run(t, 7, func(p *Proc) {
		got := p.World().Reduce(0, 8, uint64(p.Rank()), OpSum)
		if p.Rank() == 0 && got != 21 { // 0+1+...+6
			t.Errorf("reduce sum = %d, want 21", got)
		}
	})
}

func TestAllreduceOps(t *testing.T) {
	run(t, 6, func(p *Proc) {
		w := p.World()
		if got := w.Allreduce(8, uint64(p.Rank()), OpSum); got != 15 {
			t.Errorf("allreduce sum = %d", got)
		}
		if got := w.Allreduce(8, uint64(p.Rank()), OpMax); got != 5 {
			t.Errorf("allreduce max = %d", got)
		}
		if got := w.Allreduce(8, uint64(p.Rank()+3), OpMin); got != 3 {
			t.Errorf("allreduce min = %d", got)
		}
		if got := w.Allreduce(8, uint64(1)<<uint(p.Rank()), OpBor); got != 63 {
			t.Errorf("allreduce bor = %d", got)
		}
	})
}

func TestGather(t *testing.T) {
	run(t, 5, func(p *Proc) {
		got := p.World().Gather(1, 8, p.Rank()*10)
		if p.Rank() == 1 {
			for r := 0; r < 5; r++ {
				if got[r].(int) != r*10 {
					t.Errorf("gather[%d] = %v", r, got[r])
				}
			}
		} else if got != nil {
			t.Errorf("non-root rank %d received gather data", p.Rank())
		}
	})
}

func TestAllgather(t *testing.T) {
	run(t, 4, func(p *Proc) {
		got := p.World().Allgather(8, p.Rank())
		if len(got) != 4 {
			t.Errorf("allgather len = %d", len(got))
			return
		}
		for r := 0; r < 4; r++ {
			if got[r].(int) != r {
				t.Errorf("allgather[%d] = %v", r, got[r])
			}
		}
	})
}

func TestScatter(t *testing.T) {
	run(t, 4, func(p *Proc) {
		var payloads []any
		if p.Rank() == 0 {
			payloads = []any{"a", "b", "c", "d"}
		}
		got := p.World().Scatter(0, 8, payloads)
		want := string(rune('a' + p.Rank()))
		if got.(string) != want {
			t.Errorf("scatter rank %d = %v, want %s", p.Rank(), got, want)
		}
	})
}

func TestAlltoall(t *testing.T) {
	res := run(t, 6, func(p *Proc) {
		p.World().Alltoall(128)
	})
	if res.Makespan <= 0 {
		t.Fatalf("alltoall advanced no time")
	}
}

func TestCollectivesBackToBack(t *testing.T) {
	// Successive collectives on the same communicator must not
	// cross-match (per-collective sequence tags).
	run(t, 5, func(p *Proc) {
		w := p.World()
		for i := 0; i < 20; i++ {
			if got := w.Allreduce(8, uint64(i), OpMax); got != uint64(i) {
				t.Errorf("round %d: %d", i, got)
				return
			}
		}
	})
}

func TestDup(t *testing.T) {
	run(t, 4, func(p *Proc) {
		w := p.World()
		dup := w.Dup()
		if dup.ID() == w.ID() {
			t.Errorf("dup shares CommID")
		}
		if dup.Size() != w.Size() || dup.Rank() != w.Rank() {
			t.Errorf("dup group differs")
		}
		// Message isolation: a message on dup must not match a recv on
		// world.
		if p.Rank() == 0 {
			dup.Send(1, 5, 0, "dup")
			w.Send(1, 5, 0, "world")
		} else if p.Rank() == 1 {
			if got := w.Recv(0, 5).Payload.(string); got != "world" {
				t.Errorf("world recv got %q", got)
			}
			if got := dup.Recv(0, 5).Payload.(string); got != "dup" {
				t.Errorf("dup recv got %q", got)
			}
		}
	})
}

func TestComputeAdvancesClockAndLedger(t *testing.T) {
	res := run(t, 1, func(p *Proc) {
		p.Compute(5 * vtime.Millisecond)
	})
	if res.Clocks[0] != vtime.Time(5*vtime.Millisecond) {
		t.Fatalf("clock = %v", res.Clocks[0])
	}
	if res.Ledgers[0].Spent(vtime.CatApp) != 5*vtime.Millisecond {
		t.Fatalf("app ledger = %v", res.Ledgers[0].Spent(vtime.CatApp))
	}
}

func TestChargeOverhead(t *testing.T) {
	res := run(t, 1, func(p *Proc) {
		p.ChargeOverhead(vtime.CatCluster, 3*vtime.Microsecond)
	})
	if res.Ledgers[0].Spent(vtime.CatCluster) != 3*vtime.Microsecond {
		t.Fatalf("cluster ledger = %v", res.Ledgers[0].Spent(vtime.CatCluster))
	}
	if res.Clocks[0] != vtime.Time(3*vtime.Microsecond) {
		t.Fatalf("clock = %v", res.Clocks[0])
	}
}

func TestMessageArrivalTime(t *testing.T) {
	run(t, 2, func(p *Proc) {
		w := p.World()
		model := p.Model()
		if p.Rank() == 0 {
			p.Compute(vtime.Millisecond)
			w.Send(1, 1, 1000, nil)
		} else {
			msg := w.Recv(0, 1)
			// Arrival = sender clock at send (1ms + alpha) + transfer.
			want := vtime.Time(vtime.Millisecond + vtime.Duration(model.Alpha) + model.PtoP(1000) - model.Alpha)
			if msg.Arrive != want {
				t.Errorf("arrive = %v, want %v", msg.Arrive, want)
			}
			if p.Clock.Now() < msg.Arrive {
				t.Errorf("receiver clock behind arrival")
			}
		}
	})
}

func TestPanicPropagates(t *testing.T) {
	_, err := Run(Config{P: 2}, func(p *Proc) {
		if p.Rank() == 1 {
			panic("boom")
		}
		// Rank 0 must not block forever on a dead peer in this test;
		// give it nothing to do.
	})
	if err == nil {
		t.Fatalf("panic not reported")
	}
}

func TestResultAggregates(t *testing.T) {
	res := run(t, 3, func(p *Proc) {
		p.Compute(vtime.Duration(p.Rank()+1) * vtime.Millisecond)
	})
	// The implicit finalize barrier adds a few microseconds of tree
	// traversal on top of the slowest rank's 3ms.
	if res.MaxClock() < vtime.Time(3*vtime.Millisecond) ||
		res.MaxClock() > vtime.Time(3*vtime.Millisecond+100*vtime.Microsecond) {
		t.Fatalf("max clock = %v", res.MaxClock())
	}
	if res.Makespan != vtime.Duration(res.MaxClock()) {
		t.Fatalf("makespan = %v", res.Makespan)
	}
	agg := res.AggregateLedger()
	if agg.Spent(vtime.CatApp) != 6*vtime.Millisecond {
		t.Fatalf("aggregate app = %v", agg.Spent(vtime.CatApp))
	}
}

func TestVirtualDeterminism(t *testing.T) {
	// Without wildcards the virtual makespan must be bit-identical run
	// to run, regardless of goroutine scheduling.
	body := func(p *Proc) {
		w := p.World()
		for i := 0; i < 50; i++ {
			p.Compute(vtime.Duration(p.Rank()%3+1) * vtime.Microsecond)
			next := (p.Rank() + 1) % p.Size()
			prev := (p.Rank() + p.Size() - 1) % p.Size()
			w.Sendrecv(next, 1, 512, nil, prev, 1)
			if i%10 == 9 {
				w.Allreduce(8, uint64(i), OpSum)
			}
		}
	}
	first := run(t, 8, body).Makespan
	for i := 0; i < 3; i++ {
		if got := run(t, 8, body).Makespan; got != first {
			t.Fatalf("nondeterministic makespan: %v vs %v", got, first)
		}
	}
}

func TestWildcardDeterminism(t *testing.T) {
	// Even with ANY_SOURCE, the conservative matcher keeps the virtual
	// makespan deterministic for a master/worker exchange.
	body := func(p *Proc) {
		w := p.World()
		if p.Rank() == 0 {
			for i := 0; i < (p.Size()-1)*20; i++ {
				msg := w.Recv(AnySource, 1)
				w.Send(msg.Source, 2, 64, nil)
			}
		} else {
			for i := 0; i < 20; i++ {
				w.Send(0, 1, 16, nil)
				w.Recv(0, 2)
				p.Compute(200 * vtime.Microsecond)
			}
		}
	}
	first := run(t, 6, body).Makespan
	for i := 0; i < 3; i++ {
		if got := run(t, 6, body).Makespan; got != first {
			t.Fatalf("wildcard nondeterminism: %v vs %v", got, first)
		}
	}
}

type countingHooks struct {
	mu    sync.Mutex
	pre   int
	post  int
	final int
	ops   []OpCode
}

func (c *countingHooks) Pre(ci *CallInfo) {
	c.mu.Lock()
	c.pre++
	c.mu.Unlock()
}
func (c *countingHooks) Post(ci *CallInfo) {
	c.mu.Lock()
	c.post++
	c.ops = append(c.ops, ci.Op)
	c.mu.Unlock()
}
func (c *countingHooks) Finalize() {
	c.mu.Lock()
	c.final++
	c.mu.Unlock()
}

func TestInterposerHooks(t *testing.T) {
	h := &countingHooks{}
	_, err := Run(Config{P: 2, Hooks: func(p *Proc) Interposer { return h }}, func(p *Proc) {
		w := p.World()
		if p.Rank() == 0 {
			w.Send(1, 1, 0, nil)
		} else {
			w.Recv(0, 1)
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Per rank: one p2p op + barrier + finalize pseudo-op = 3 posts.
	if h.post != 6 || h.pre != 6 {
		t.Fatalf("pre/post = %d/%d, want 6/6", h.pre, h.post)
	}
	if h.final != 2 {
		t.Fatalf("finalize calls = %d", h.final)
	}
}

func TestInterposerCallInfo(t *testing.T) {
	var infos []CallInfo
	var mu sync.Mutex
	hooks := func(p *Proc) Interposer { return infoHooks{&mu, &infos, p} }
	_, err := Run(Config{P: 2, Hooks: hooks}, func(p *Proc) {
		w := p.World()
		if p.Rank() == 0 {
			w.Send(1, 9, 128, nil)
		} else {
			w.Recv(AnySource, 9)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var send, recv *CallInfo
	for i := range infos {
		switch infos[i].Op {
		case OpSend:
			send = &infos[i]
		case OpRecv:
			recv = &infos[i]
		}
	}
	if send == nil || send.Dest != 1 || send.Bytes != 128 || send.Tag != 9 {
		t.Fatalf("send info: %+v", send)
	}
	if recv == nil || recv.Src != AnySource || recv.MatchedSrc != 0 || recv.Bytes != 128 {
		t.Fatalf("recv info: %+v", recv)
	}
}

type infoHooks struct {
	mu    *sync.Mutex
	infos *[]CallInfo
	p     *Proc
}

func (h infoHooks) Pre(*CallInfo) {}
func (h infoHooks) Post(ci *CallInfo) {
	h.mu.Lock()
	*h.infos = append(*h.infos, *ci)
	h.mu.Unlock()
}
func (h infoHooks) Finalize() {}

func TestMarkerComm(t *testing.T) {
	run(t, 3, func(p *Proc) {
		if p.MarkerComm().ID() != CommMarker {
			t.Errorf("marker comm id = %d", p.MarkerComm().ID())
		}
		p.MarkerComm().Barrier()
	})
}

func TestSendInvalidRankPanics(t *testing.T) {
	_, err := Run(Config{P: 2}, func(p *Proc) {
		if p.Rank() == 0 {
			p.World().Send(5, 1, 0, nil)
		}
	})
	if err == nil {
		t.Fatalf("invalid destination accepted")
	}
}

func TestSplit(t *testing.T) {
	run(t, 6, func(p *Proc) {
		// Rows of a 2x3 grid.
		row := p.Rank() / 3
		sub := p.World().Split(row, p.Rank())
		if sub == nil {
			t.Errorf("rank %d got nil comm", p.Rank())
			return
		}
		if sub.Size() != 3 || sub.Rank() != p.Rank()%3 {
			t.Errorf("rank %d: size=%d rank=%d", p.Rank(), sub.Size(), sub.Rank())
		}
		// The sub-communicators work independently: per-row reduce.
		got := sub.Allreduce(8, uint64(p.Rank()), OpSum)
		want := uint64(3*row*3 + 3) // sum of the row's world ranks
		if got != want {
			t.Errorf("rank %d: row sum = %d, want %d", p.Rank(), got, want)
		}
	})
}

func TestSplitUndefined(t *testing.T) {
	run(t, 4, func(p *Proc) {
		color := 0
		if p.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub := p.World().Split(color, 0)
		if p.Rank() == 3 {
			if sub != nil {
				t.Errorf("undefined rank received a comm")
			}
			return
		}
		if sub == nil || sub.Size() != 3 {
			t.Errorf("rank %d: %+v", p.Rank(), sub)
		}
	})
}

func TestSplitKeyOrdering(t *testing.T) {
	run(t, 4, func(p *Proc) {
		// Reverse key order: world rank 3 becomes sub-rank 0.
		sub := p.World().Split(0, -p.Rank())
		if sub.Rank() != 3-p.Rank() {
			t.Errorf("rank %d -> sub rank %d", p.Rank(), sub.Rank())
		}
	})
}

func TestSplitIsolation(t *testing.T) {
	run(t, 4, func(p *Proc) {
		sub := p.World().Split(p.Rank()%2, p.Rank())
		// Messages within a split comm must not leak across colors:
		// partner is the other member of my color.
		if sub.Size() != 2 {
			t.Errorf("size = %d", sub.Size())
			return
		}
		other := 1 - sub.Rank()
		sub.Send(other, 9, 4, p.Rank())
		msg := sub.Recv(other, 9)
		wantWorld := (p.Rank() + 2) % 4
		if msg.Payload.(int) != wantWorld {
			t.Errorf("rank %d heard from %v, want %d", p.Rank(), msg.Payload, wantWorld)
		}
	})
}
