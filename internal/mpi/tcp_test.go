package mpi

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"chameleon/internal/vtime"
)

// freeAddr reserves a localhost port for a fleet rendezvous.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// fleetMember describes one process-worth of ranks for runFleet.
type fleetMember struct {
	lo, hi int
}

// runFleet executes body on a TCP fleet hosted inside this test process:
// each member gets its own transport and mpi.Run (its own Runtime), and
// they talk over real localhost sockets. Returns one Result per member —
// all of which must describe the same world.
func runFleet(t *testing.T, p int, members []fleetMember, body func(*Proc)) []*Result {
	t.Helper()
	join := freeAddr(t)
	results := make([]*Result, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m fleetMember) {
			defer wg.Done()
			tr, err := NewTCPTransport(TCPOptions{
				Join: join, RankLo: m.lo, RankHi: m.hi, P: p,
				DialTimeout: 10 * time.Second,
			})
			if err != nil {
				errs[i] = fmt.Errorf("member %d rendezvous: %w", i, err)
				return
			}
			results[i], errs[i] = Run(Config{P: p, Transport: tr}, body)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	return results
}

func TestTCPFleetSendRecvAndCollectives(t *testing.T) {
	const p = 4
	sum := make([]uint64, p)
	gathered := make([][]any, p)
	results := runFleet(t, p, []fleetMember{{0, 1}, {2, 3}}, func(pr *Proc) {
		w := pr.World()
		r := pr.Rank()
		// Ring exchange crossing the process boundary both ways.
		next, prev := (r+1)%p, (r+p-1)%p
		w.Send(next, 7, 8, fmt.Sprintf("from %d", r))
		if got := w.Recv(prev, 7).Payload.(string); got != fmt.Sprintf("from %d", prev) {
			t.Errorf("rank %d: ring payload %q", r, got)
		}
		sum[r] = w.Allreduce(8, uint64(r+1), OpSum)
		gathered[r] = w.Allgather(8, r*10)
		w.Barrier()
	})
	for r := 0; r < p; r++ {
		if sum[r] != 1+2+3+4 {
			t.Errorf("rank %d allreduce = %d", r, sum[r])
		}
		for i, v := range gathered[r] {
			if v.(int) != i*10 {
				t.Errorf("rank %d allgather[%d] = %v", r, i, v)
			}
		}
	}
	// Every member returns the same world-wide clocks.
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0].Clocks, results[i].Clocks) {
			t.Errorf("member %d clocks diverge: %v vs %v", i, results[i].Clocks, results[0].Clocks)
		}
	}
}

func TestTCPFleetMatchesInProcess(t *testing.T) {
	const p = 6
	body := func(pr *Proc) {
		w := pr.World()
		r := pr.Rank()
		pr.Compute(vtime.Duration(r+1) * vtime.Millisecond)
		next, prev := (r+1)%p, (r+p-1)%p
		for i := 0; i < 3; i++ {
			w.Send(next, i, 64, r)
			w.Recv(prev, i)
			w.Allreduce(8, uint64(r), OpMax)
		}
		w.Barrier()
	}
	inproc, err := Run(Config{P: p}, body)
	if err != nil {
		t.Fatal(err)
	}
	fleet := runFleet(t, p, []fleetMember{{0, 1}, {2, 3}, {4, 5}}, body)
	for i, res := range fleet {
		if !reflect.DeepEqual(res.Clocks, inproc.Clocks) {
			t.Errorf("member %d clocks diverge from in-process: %v vs %v", i, res.Clocks, inproc.Clocks)
		}
		if res.Makespan != inproc.Makespan {
			t.Errorf("member %d makespan %v, in-process %v", i, res.Makespan, inproc.Makespan)
		}
	}
}

func TestTCPFleetWildcardAcrossProcesses(t *testing.T) {
	// The conservative matcher must order wildcard receives by virtual
	// arrival even when the senders live in other processes: this is the
	// counter-stable remote bound sweep's correctness test. Rank r
	// computes r virtual milliseconds before sending, so matches must
	// come back in rank order regardless of socket timing.
	const p = 4
	var mu sync.Mutex
	var order []int
	runFleet(t, p, []fleetMember{{0, 0}, {1, 1}, {2, 3}}, func(pr *Proc) {
		w := pr.World()
		if pr.Rank() == 0 {
			for i := 1; i < p; i++ {
				msg := w.Recv(AnySource, 1)
				mu.Lock()
				order = append(order, msg.Source)
				mu.Unlock()
			}
		} else {
			pr.Compute(vtime.Duration(pr.Rank()) * vtime.Millisecond)
			w.Send(0, 1, 0, nil)
		}
	})
	if !reflect.DeepEqual(order, []int{1, 2, 3}) {
		t.Fatalf("wildcard match order %v, want [1 2 3]", order)
	}
}

func TestTCPFleetCommDup(t *testing.T) {
	// Dup allocates world-unique CommIDs through the rendezvous
	// coordinator; all ranks must agree on the ID and the dup must relay
	// traffic across the process boundary.
	const p = 4
	ids := make([]CommID, p)
	runFleet(t, p, []fleetMember{{0, 1}, {2, 3}}, func(pr *Proc) {
		dup := pr.World().Dup()
		ids[pr.Rank()] = dup.ID()
		r := pr.Rank()
		if r == 0 {
			dup.Send(3, 9, 8, "over the dup")
		} else if r == 3 {
			if got := dup.Recv(0, 9).Payload.(string); got != "over the dup" {
				t.Errorf("dup payload %q", got)
			}
		}
		dup.Barrier()
	})
	for r := 1; r < p; r++ {
		if ids[r] != ids[0] {
			t.Fatalf("rank %d dup CommID %d, rank 0 got %d", r, ids[r], ids[0])
		}
	}
	if ids[0] < commUserBase {
		t.Fatalf("dup CommID %d below user base", ids[0])
	}
}

func TestTCPFleetConfigMismatchRejected(t *testing.T) {
	join := freeAddr(t)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	fps := []string{"seed=1", "seed=2"}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := NewTCPTransport(TCPOptions{
				Join: join, RankLo: i * 2, RankHi: i*2 + 1, P: 4,
				Fingerprint: fps[i], DialTimeout: 5 * time.Second,
			})
			if err == nil {
				tr.close()
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("mismatched fingerprints both accepted")
	}
}

func TestWirePayloadRoundTrip(t *testing.T) {
	cases := []any{
		nil,
		uint64(0),
		uint64(1<<63 + 17),
		42,
		-7,
		"hello fleet",
		[]int{3, 1, 4, 1, 5},
		splitEntry{Color: 2, Key: -1, Rank: 5},
		map[int][]int{0: {0, 2}, 1: {1, 3}},
		[]gatherPair{{Rank: 0, Obj: uint64(9)}, {Rank: 3, Obj: "nested"}},
		[]gatherPair{{Rank: 1, Obj: []gatherPair{{Rank: 2, Obj: nil}}}},
	}
	for _, want := range cases {
		buf, err := appendPayload(nil, want, 0)
		if err != nil {
			t.Errorf("encode %T: %v", want, err)
			continue
		}
		got, rest, err := decodePayload(buf, 0)
		if err != nil {
			t.Errorf("decode %T: %v", want, err)
			continue
		}
		if len(rest) != 0 {
			t.Errorf("decode %T left %d bytes", want, len(rest))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("roundtrip %T: got %#v want %#v", want, got, want)
		}
	}
}

func TestWireUnregisteredPayload(t *testing.T) {
	type private struct{ X int }
	if _, err := appendPayload(nil, private{1}, 0); err == nil {
		t.Fatal("unregistered payload type encoded")
	}
}

func TestDataFrameRoundTrip(t *testing.T) {
	msg := message{
		comm:    CommID(23),
		source:  3,
		tag:     1789,
		bytes:   4096,
		payload: "payload",
		arrive:  vtime.Time(987654321),
		origin:  3,
		seq:     41,
		sendVT:  vtime.Time(987000000),
	}
	body, err := appendDataFrame(nil, 12, msg)
	if err != nil {
		t.Fatal(err)
	}
	dest, got, ctl, err := decodeFrame(body)
	if err != nil || ctl != nil {
		t.Fatalf("decode: ctl=%v err=%v", ctl, err)
	}
	if dest != 12 || !reflect.DeepEqual(got, msg) {
		t.Fatalf("roundtrip: dest=%d got=%+v want=%+v", dest, got, msg)
	}
}

func TestCtlFrameRoundTrip(t *testing.T) {
	want := &ctlMsg{
		T: "bresp", Req: 99, HasBound: true, Bound: -1,
		Gen: 12345, Sent: []uint64{1, 2}, Recvd: []uint64{3, 4},
	}
	body, err := appendCtlFrame(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	_, _, got, err := decodeFrame(body)
	if err != nil || got == nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip: got %+v want %+v", got, want)
	}
}
