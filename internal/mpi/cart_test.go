package mpi

import "testing"

func TestCartCoordsRoundTrip(t *testing.T) {
	run(t, 12, func(p *Proc) {
		cart, err := NewCart(p.World(), []int{3, 4}, []bool{false, true})
		if err != nil {
			t.Errorf("cart: %v", err)
			return
		}
		coords := cart.Coords(p.Rank())
		back, ok := cart.Rank(coords)
		if !ok || back != p.Rank() {
			t.Errorf("rank %d -> %v -> %d", p.Rank(), coords, back)
		}
	})
}

func TestCartErrors(t *testing.T) {
	run(t, 6, func(p *Proc) {
		if p.Rank() != 0 {
			return
		}
		if _, err := NewCart(p.World(), []int{2, 2}, []bool{false, false}); err == nil {
			t.Errorf("size mismatch accepted")
		}
		if _, err := NewCart(p.World(), []int{6}, []bool{false, true}); err == nil {
			t.Errorf("mask mismatch accepted")
		}
		if _, err := NewCart(p.World(), []int{-6}, []bool{false}); err == nil {
			t.Errorf("negative dim accepted")
		}
	})
}

func TestCartShift(t *testing.T) {
	run(t, 12, func(p *Proc) {
		cart, err := NewCart(p.World(), []int{3, 4}, []bool{false, true})
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		coords := cart.Coords(p.Rank())
		// Dimension 0 is non-periodic: the top row has no upward source.
		src, dst, srcOK, dstOK := cart.Shift(0, 1)
		if coords[0] == 0 && srcOK {
			t.Errorf("rank %d: spurious src %d", p.Rank(), src)
		}
		if coords[0] == 2 && dstOK {
			t.Errorf("rank %d: spurious dst %d", p.Rank(), dst)
		}
		if coords[0] == 1 && (!srcOK || !dstOK) {
			t.Errorf("rank %d: interior shift missing ends", p.Rank())
		}
		// Dimension 1 is periodic: shifts always resolve and wrap.
		src, dst, srcOK, dstOK = cart.Shift(1, 1)
		if !srcOK || !dstOK {
			t.Errorf("rank %d: periodic shift failed", p.Rank())
		}
		wantDst := coords[0]*4 + (coords[1]+1)%4
		if dst != wantDst {
			t.Errorf("rank %d: dst %d, want %d", p.Rank(), dst, wantDst)
		}
		_ = src
	})
}

func TestCartHaloExchange(t *testing.T) {
	// A full periodic halo exchange driven by the topology: every rank
	// receives its west neighbor's rank value.
	run(t, 12, func(p *Proc) {
		cart, _ := NewCart(p.World(), []int{3, 4}, []bool{true, true})
		w := p.World()
		src, dst, _, _ := cart.Shift(1, 1)
		msg := w.Sendrecv(dst, 5, 8, p.Rank(), src, 5)
		if msg.Payload.(int) != src {
			t.Errorf("rank %d: heard %v, want %d", p.Rank(), msg.Payload, src)
		}
	})
}

func TestCartSubComm(t *testing.T) {
	run(t, 12, func(p *Proc) {
		cart, _ := NewCart(p.World(), []int{3, 4}, []bool{false, false})
		// Keep dimension 1: row communicators of size 4.
		rows, err := cart.SubComm([]bool{false, true})
		if err != nil || rows == nil {
			t.Errorf("sub comm: %v", err)
			return
		}
		if rows.Size() != 4 {
			t.Errorf("row size = %d", rows.Size())
		}
		sum := rows.Allreduce(8, uint64(p.Rank()), OpSum)
		row := p.Rank() / 4
		want := uint64(4*row*4 + 6) // sum of the row's world ranks
		if sum != want {
			t.Errorf("rank %d: row sum %d, want %d", p.Rank(), sum, want)
		}
	})
}
