package mpi

import (
	"fmt"

	"chameleon/internal/obs"
	"chameleon/internal/vtime"
)

// Message is a received point-to-point message.
type Message struct {
	Source  int // communicator rank of the sender
	Tag     int
	Bytes   int
	Payload any
	// Arrive is the virtual time the message became available.
	Arrive vtime.Time
}

// --- raw (untraced) layer -------------------------------------------------

// rawSend deposits a message in dest's mailbox. Eager protocol: the
// sender is charged only its injection overhead (alpha); the transfer
// completes at sendTime + PtoP(bytes) on the receiver side.
func (c *Comm) rawSend(dest, tag, bytes int, payload any) {
	if dest < 0 || dest >= len(c.group) {
		panic(fmt.Sprintf("mpi: rank %d send to invalid rank %d (comm %d)", c.self, dest, c.id))
	}
	rt := c.p.rt
	m := rt.model
	sendAt := c.p.Clock.Advance(m.Alpha)
	msg := message{
		comm:    c.id,
		source:  c.self,
		tag:     tag,
		bytes:   bytes,
		payload: payload,
		arrive:  sendAt + vtime.Time(m.PtoP(bytes)-m.Alpha),
	}
	if rt.causal != nil {
		c.p.sendSeq++
		msg.origin = c.p.rank
		msg.seq = c.p.sendSeq
		msg.sendVT = sendAt
	}
	rt.tr.deposit(c.worldRank(dest), msg)
}

// rawRecv blocks until a matching message is available and advances the
// receiver clock to the message's arrival time. Wildcard receives match
// conservatively (see Runtime.takeAny) so virtual-time order does not
// depend on goroutine scheduling.
func (c *Comm) rawRecv(source, tag int) Message {
	if source != AnySource && (source < 0 || source >= len(c.group)) {
		panic(fmt.Sprintf("mpi: rank %d recv from invalid rank %d (comm %d)", c.self, source, c.id))
	}
	rt := c.p.rt
	self := c.worldRank(c.self)
	blockStart := c.p.Clock.Now()
	c.p.blockedComm.Store(int32(c.id))
	c.p.blockedSrc.Store(int64(source))
	c.p.blockedTag.Store(int64(tag))
	rt.setState(self, stateBlocked)
	var msg message
	if source == AnySource {
		msg = rt.takeAny(self, rt.mailboxes[self], c.id, tag)
	} else {
		msg = rt.mailboxes[self].take(c.id, source, tag)
	}
	rt.setState(self, stateActive)
	c.p.Clock.AdvanceTo(msg.arrive)
	c.p.Clock.Advance(rt.model.Alpha) // receive-side software overhead
	if rt.causal != nil && msg.seq != 0 {
		// The receiver records the full matched edge: the sender's
		// piggybacked stamp plus local wait accounting. Edges always land
		// in the receiver's own row, so the store needs no locking.
		wait := int64(msg.arrive - blockStart)
		if wait < 0 {
			wait = 0 // message was already buffered; no blocked time
		}
		rt.causal.Record(obs.Edge{
			From: msg.origin, To: self, Seq: msg.seq,
			SendVT: int64(msg.sendVT), ArriveVT: int64(msg.arrive), RecvVT: int64(c.p.Clock.Now()),
			WaitVT: wait, Bytes: msg.bytes, Comm: int32(msg.comm), Tag: msg.tag,
			Ctx: c.p.ctxName, CtxSeq: c.p.ctxSeq,
		})
	}
	return Message{Source: msg.source, Tag: msg.tag, Bytes: msg.bytes, Payload: msg.payload, Arrive: msg.arrive}
}

// RawSend sends without interposition (tracing-layer internal traffic).
// It always travels on CommInternal so it can never match application
// receives.
func (c *Comm) RawSend(dest, tag, bytes int, payload any) {
	internal := Comm{p: c.p, id: CommInternal, group: c.group, self: c.self}
	internal.rawSend(dest, tag, bytes, payload)
}

// RawRecv receives tracing-layer internal traffic.
func (c *Comm) RawRecv(source, tag int) Message {
	internal := Comm{p: c.p, id: CommInternal, group: c.group, self: c.self}
	return internal.rawRecv(source, tag)
}

// --- public (traced) layer ------------------------------------------------

// Send sends bytes (payload optional) to dest with tag.
func (c *Comm) Send(dest, tag, bytes int, payload any) {
	ci := &CallInfo{Op: OpSend, Comm: c.id, Dest: dest, Src: NoPeer, Root: NoPeer, Tag: tag, Bytes: bytes}
	start := c.p.opBegin(ci)
	c.rawSend(dest, tag, bytes, payload)
	c.p.opEnd(ci, start)
}

// Recv blocks for a message from source (or AnySource) with tag (or
// AnyTag).
func (c *Comm) Recv(source, tag int) Message {
	ci := &CallInfo{Op: OpRecv, Comm: c.id, Dest: NoPeer, Src: source, Root: NoPeer, Tag: tag}
	start := c.p.opBegin(ci)
	msg := c.rawRecv(source, tag)
	ci.Bytes = msg.Bytes
	ci.MatchedSrc = msg.Source
	c.p.opEnd(ci, start)
	return msg
}

// Request is a handle on a nonblocking operation.
type Request struct {
	comm   *Comm
	op     OpCode
	source int
	tag    int
	done   bool
	msg    Message
}

// Isend starts a nonblocking send. The simulated runtime is eager, so
// the send completes immediately; Wait on the returned request is a
// no-op that exists for program-shape fidelity.
func (c *Comm) Isend(dest, tag, bytes int, payload any) *Request {
	ci := &CallInfo{Op: OpIsend, Comm: c.id, Dest: dest, Src: NoPeer, Root: NoPeer, Tag: tag, Bytes: bytes}
	start := c.p.opBegin(ci)
	c.rawSend(dest, tag, bytes, payload)
	c.p.opEnd(ci, start)
	return &Request{comm: c, op: OpIsend, done: true}
}

// Irecv posts a nonblocking receive; the match happens at Wait.
func (c *Comm) Irecv(source, tag int) *Request {
	ci := &CallInfo{Op: OpIrecv, Comm: c.id, Dest: NoPeer, Src: source, Root: NoPeer, Tag: tag}
	start := c.p.opBegin(ci)
	c.p.opEnd(ci, start)
	return &Request{comm: c, op: OpIrecv, source: source, tag: tag}
}

// Wait completes a request, returning the received message for Irecv.
func (c *Comm) Wait(r *Request) Message {
	ci := &CallInfo{Op: OpWait, Comm: c.id, Dest: NoPeer, Src: NoPeer, Root: NoPeer}
	start := c.p.opBegin(ci)
	if !r.done {
		r.msg = c.rawRecv(r.source, r.tag)
		r.done = true
		ci.Bytes = r.msg.Bytes
		ci.MatchedSrc = r.msg.Source
	}
	c.p.opEnd(ci, start)
	return r.msg
}

// Waitall completes a set of requests.
func (c *Comm) Waitall(rs ...*Request) {
	for _, r := range rs {
		c.Wait(r)
	}
}

// Sendrecv performs a combined send and receive (the classic halo
// exchange primitive).
func (c *Comm) Sendrecv(dest, sendTag, sendBytes int, payload any, source, recvTag int) Message {
	ci := &CallInfo{Op: OpSendrecv, Comm: c.id, Dest: dest, Src: source, Root: NoPeer, Tag: sendTag, Bytes: sendBytes}
	start := c.p.opBegin(ci)
	c.rawSend(dest, sendTag, sendBytes, payload)
	msg := c.rawRecv(source, recvTag)
	ci.MatchedSrc = msg.Source
	c.p.opEnd(ci, start)
	return msg
}
