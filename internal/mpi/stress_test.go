package mpi

import (
	"testing"

	"chameleon/internal/vtime"
)

// TestConcurrentSubCommunicators runs independent collective streams on
// row and column communicators simultaneously: tags and communicator
// contexts must never cross-match.
func TestConcurrentSubCommunicators(t *testing.T) {
	const rows, cols = 3, 4
	run(t, rows*cols, func(p *Proc) {
		w := p.World()
		row := p.Rank() / cols
		col := p.Rank() % cols
		rowComm := w.Split(row, col)
		colComm := w.Split(rows+col, row) // distinct color space
		for i := 0; i < 15; i++ {
			rs := rowComm.Allreduce(8, uint64(p.Rank()), OpSum)
			cs := colComm.Allreduce(8, uint64(p.Rank()), OpSum)
			wantRow := uint64(0)
			for c := 0; c < cols; c++ {
				wantRow += uint64(row*cols + c)
			}
			wantCol := uint64(0)
			for r := 0; r < rows; r++ {
				wantCol += uint64(r*cols + col)
			}
			if rs != wantRow || cs != wantCol {
				t.Errorf("rank %d iter %d: row=%d want %d, col=%d want %d",
					p.Rank(), i, rs, wantRow, cs, wantCol)
				return
			}
		}
	})
}

// TestRandomMatchedTraffic generates a deterministic pseudo-random
// schedule of matched send/recv pairs plus interleaved collectives and
// checks completion and payload fidelity — a fuzz of the matching layer.
func TestRandomMatchedTraffic(t *testing.T) {
	const P = 6
	const ops = 120
	// Precompute a global schedule: op i is a message from src to dst
	// with tag derived from i; every rank executes its slice in order.
	type op struct{ src, dst, tag int }
	state := uint64(7)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	var schedule []op
	for i := 0; i < ops; i++ {
		src := next(P)
		dst := next(P)
		if src == dst {
			dst = (dst + 1) % P
		}
		schedule = append(schedule, op{src, dst, 1000 + i})
	}
	run(t, P, func(p *Proc) {
		w := p.World()
		for i, o := range schedule {
			switch p.Rank() {
			case o.src:
				w.Send(o.dst, o.tag, 32, i)
			case o.dst:
				if got := w.Recv(o.src, o.tag).Payload.(int); got != i {
					t.Errorf("op %d: payload %d", i, got)
					return
				}
			}
			if i%20 == 19 {
				w.Barrier()
			}
		}
	})
}

// TestRandomTrafficDeterministic reruns a pseudo-random schedule and
// demands identical virtual makespans.
func TestRandomTrafficDeterministic(t *testing.T) {
	body := func(p *Proc) {
		w := p.World()
		state := uint64(11)
		next := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int(state>>33) % n
		}
		for i := 0; i < 60; i++ {
			src := next(5)
			dst := (src + 1 + next(4)) % 5
			// Draw on every rank so the per-rank RNG streams stay in
			// lockstep; only the source uses the value.
			compute := vtime.Duration(next(1000)) * vtime.Microsecond
			tag := 2000 + i
			switch p.Rank() {
			case src:
				p.Compute(compute)
				w.Send(dst, tag, 64, nil)
			case dst:
				w.Recv(src, tag)
			}
			if i%10 == 9 {
				w.Allreduce(8, uint64(i), OpSum)
			}
		}
	}
	first := run(t, 5, body).Makespan
	for i := 0; i < 2; i++ {
		if got := run(t, 5, body).Makespan; got != first {
			t.Fatalf("nondeterministic: %v vs %v", got, first)
		}
	}
}

// TestManyRanksSmoke exercises the runtime at a mid scale with a dense
// collective pattern.
func TestManyRanksSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-scale smoke")
	}
	res := run(t, 200, func(p *Proc) {
		w := p.World()
		for i := 0; i < 10; i++ {
			w.Sendrecv((p.Rank()+1)%200, 1, 256, nil, (p.Rank()+199)%200, 1)
			w.Allreduce(8, uint64(p.Rank()), OpSum)
		}
	})
	if res.Makespan <= 0 {
		t.Fatalf("no progress")
	}
}
