package mpi

import (
	"reflect"
	"sync"
	"testing"
)

// runGroup executes body on p ranks and fails the test on error.
func runGroup(t *testing.T, p int, body func(p *Proc)) *Result {
	t.Helper()
	res, err := Run(Config{P: p}, body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestGroupAllreduceSubset(t *testing.T) {
	members := []int{1, 3, 4, 6}
	var mu sync.Mutex
	got := map[int]uint64{}
	runGroup(t, 8, func(p *Proc) {
		if TreePos(members, p.Rank()) < 0 {
			return
		}
		v := GroupAllreduceU64(p, members, 100<<10, uint64(p.Rank()), OpSum)
		mu.Lock()
		got[p.Rank()] = v
		mu.Unlock()
	})
	want := uint64(1 + 3 + 4 + 6)
	for _, r := range members {
		if got[r] != want {
			t.Errorf("rank %d allreduce = %d, want %d", r, got[r], want)
		}
	}
}

func TestGroupReduceBcastRoles(t *testing.T) {
	members := []int{0, 2, 5}
	var mu sync.Mutex
	roots := map[int]bool{}
	bcast := map[int]uint64{}
	runGroup(t, 6, func(p *Proc) {
		if TreePos(members, p.Rank()) < 0 {
			return
		}
		v, isRoot := GroupReduceU64(p, members, 200<<10, 1, OpSum)
		mu.Lock()
		roots[p.Rank()] = isRoot
		mu.Unlock()
		if isRoot && v != 3 {
			t.Errorf("root reduce = %d, want 3", v)
		}
		out := GroupBcastU64(p, members, 300<<10, uint64(p.Rank())*10)
		mu.Lock()
		bcast[p.Rank()] = out
		mu.Unlock()
	})
	for _, r := range members {
		if wantRoot := r == members[0]; roots[r] != wantRoot {
			t.Errorf("rank %d root = %v, want %v", r, roots[r], wantRoot)
		}
		if bcast[r] != 0 {
			// members[0] == 0, so the broadcast value is 0*10.
			t.Errorf("rank %d bcast = %d, want 0", r, bcast[r])
		}
	}
}

func TestGroupGatherScatterAlltoallBarrier(t *testing.T) {
	members := []int{1, 2, 3, 5, 7}
	var mu sync.Mutex
	var gathered []any
	runGroup(t, 8, func(p *Proc) {
		if TreePos(members, p.Rank()) < 0 {
			return
		}
		GroupBarrier(p, members, 400<<10)
		out := GroupGatherObj(p, members, 500<<10, 8, p.Rank()*100)
		if out != nil {
			mu.Lock()
			gathered = out
			mu.Unlock()
		}
		GroupScatter(p, members, 600<<10, 64)
		GroupAlltoall(p, members, 700<<10, 32)
		GroupBarrier(p, members, 800<<10)
	})
	want := []any{100, 200, 300, 500, 700}
	if !reflect.DeepEqual(gathered, want) {
		t.Errorf("gather = %v, want %v", gathered, want)
	}
}

func TestGroupNonMemberNoop(t *testing.T) {
	members := []int{0, 1}
	runGroup(t, 4, func(p *Proc) {
		// Ranks 2 and 3 call every helper too; they must return
		// immediately without traffic (the members complete regardless).
		GroupBarrier(p, members, 900<<10)
		GroupAllreduceU64(p, members, 1000<<10, 1, OpSum)
		if out := GroupBcastObj(p, members, 1100<<10, "keep", 4); TreePos(members, p.Rank()) < 0 && out != "keep" {
			t.Errorf("non-member bcast returned %v", out)
		}
	})
}

func TestShrunkWorldIsWorldWhenFull(t *testing.T) {
	runGroup(t, 4, func(p *Proc) {
		if p.ShrunkWorld() != p.World() {
			t.Error("full-membership ShrunkWorld must alias World")
		}
		if p.AliveRanks() != nil {
			t.Error("AliveRanks must be nil without faults")
		}
		if p.Departed(1) {
			t.Error("Departed must be false without faults")
		}
	})
}
