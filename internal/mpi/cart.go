package mpi

import "fmt"

// Cart is a Cartesian topology view of a communicator (the
// MPI_Cart_create family): rank <-> coordinate translation and
// neighbor shifts, with per-dimension periodicity.
type Cart struct {
	comm     *Comm
	dims     []int
	periodic []bool
}

// NewCart attaches a Cartesian topology to the communicator. The product
// of dims must equal the communicator size. Row-major order (the last
// dimension varies fastest), as in MPI.
func NewCart(c *Comm, dims []int, periodic []bool) (*Cart, error) {
	if len(dims) == 0 || len(dims) != len(periodic) {
		return nil, fmt.Errorf("mpi: cart dims/periodic mismatch")
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("mpi: invalid cart dimension %d", d)
		}
		n *= d
	}
	if n != c.Size() {
		return nil, fmt.Errorf("mpi: cart covers %d ranks, comm has %d", n, c.Size())
	}
	return &Cart{
		comm:     c,
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
	}, nil
}

// Comm returns the underlying communicator.
func (c *Cart) Comm() *Comm { return c.comm }

// Dims returns the topology extents.
func (c *Cart) Dims() []int { return append([]int(nil), c.dims...) }

// Coords translates a communicator rank to Cartesian coordinates.
func (c *Cart) Coords(rank int) []int {
	coords := make([]int, len(c.dims))
	for i := len(c.dims) - 1; i >= 0; i-- {
		coords[i] = rank % c.dims[i]
		rank /= c.dims[i]
	}
	return coords
}

// Rank translates coordinates to a communicator rank; ok is false when a
// coordinate falls outside a non-periodic dimension (periodic ones
// wrap).
func (c *Cart) Rank(coords []int) (rank int, ok bool) {
	if len(coords) != len(c.dims) {
		return -1, false
	}
	rank = 0
	for i, x := range coords {
		d := c.dims[i]
		if x < 0 || x >= d {
			if !c.periodic[i] {
				return -1, false
			}
			x = ((x % d) + d) % d
		}
		rank = rank*d + x
	}
	return rank, true
}

// Shift returns the source and destination ranks for a displacement
// along one dimension (MPI_Cart_shift): src is the rank that would send
// to this one, dst the rank this one sends to. ok is false at a
// non-periodic boundary (MPI_PROC_NULL).
func (c *Cart) Shift(dim, disp int) (src, dst int, srcOK, dstOK bool) {
	self := c.Coords(c.comm.Rank())
	up := append([]int(nil), self...)
	up[dim] += disp
	down := append([]int(nil), self...)
	down[dim] -= disp
	dst, dstOK = c.Rank(up)
	src, srcOK = c.Rank(down)
	return src, dst, srcOK, dstOK
}

// SubComm splits the communicator into slices that keep the given
// dimensions (MPI_Cart_sub): ranks sharing coordinates on the dropped
// dimensions form one sub-communicator, ordered by the kept ones.
func (c *Cart) SubComm(keep []bool) (*Comm, error) {
	if len(keep) != len(c.dims) {
		return nil, fmt.Errorf("mpi: cart sub mask mismatch")
	}
	coords := c.Coords(c.comm.Rank())
	color, key := 0, 0
	for i := range c.dims {
		if keep[i] {
			key = key*c.dims[i] + coords[i]
		} else {
			color = color*c.dims[i] + coords[i]
		}
	}
	return c.comm.Split(color, key), nil
}
