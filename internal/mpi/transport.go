package mpi

import "chameleon/internal/vtime"

// Transport routes point-to-point messages between world ranks and
// scopes the conservative matcher's visibility. The in-process backend
// (the default) hosts every rank in this process and routes through the
// shared mailbox array; the TCP backend hosts a contiguous slice of the
// world in each OS process and routes the rest over sockets.
//
// The interface is intentionally unexported-method-only: both backends
// live in this package (they need the message/mailbox internals), and
// callers outside it — chameleon.Config, cmd/chamrun — only construct
// and pass transports, never implement them.
type Transport interface {
	// localRanks lists the world ranks hosted by this process, sorted
	// ascending, given the world size p. mpi.Run spawns one goroutine
	// per local rank; remote ranks have no goroutine, mailbox, or Proc
	// here.
	localRanks(p int) []int

	// start binds the runtime once local procs and mailboxes exist and
	// before any rank goroutine runs. Network backends start their
	// frame readers here.
	start(rt *Runtime) error

	// deposit routes a message to world rank dest: a local enqueue
	// (plus wildcard-matcher wakeup) or an encoded frame to the hosting
	// peer. Called from the sending rank's goroutine; per-rank send
	// order must be preserved end to end (MPI non-overtaking).
	deposit(dest int, msg message)

	// remoteSafe reports whether a wildcard match of a message arriving
	// at virtual time t on local rank self is conservative with respect
	// to ranks hosted by other processes: no remote rank can still
	// produce a message arriving before t. The in-process backend hosts
	// everyone and returns true; the TCP backend runs a counter-stable
	// bound sweep over its peers (see tcp.go).
	remoteSafe(self int, t vtime.Time) bool

	// allocComm reserves n consecutive world-unique communicator IDs
	// and returns the first. Called from one rank of a collective (the
	// root), which then broadcasts the block.
	allocComm(n int) CommID

	// noteState observes a local rank-state transition; network
	// backends fold it into the stability generation their peers'
	// bound sweeps check. The in-process backend ignores it.
	noteState(rank int)

	// noteAbort propagates a fatal local failure to every process of
	// the world (local wakeups are the runtime's job).
	noteAbort()

	// noteDeparted records that a local rank crash-stopped. The TCP
	// backend uses it to physically exit the process once every rank it
	// hosts is gone (crash = killed process).
	noteDeparted(rank int)

	// finish completes the run: network backends exchange per-rank
	// results so every process returns the same world-wide Result, and
	// synchronize teardown so no peer loses in-flight frames. departed
	// flags local crash-stops by world rank.
	finish(res *Result, departed []bool) (*Result, error)

	// close releases transport resources; safe after finish or on the
	// error path.
	close()
}

// inProcTransport is the default backend: all ranks live in this
// process and share the runtime's mailbox array. Every method compiles
// to the pre-seam code path; a run with a nil Config.Transport is
// bit-identical to one built before the seam existed.
type inProcTransport struct {
	rt *Runtime
}

func (t *inProcTransport) localRanks(p int) []int {
	ranks := make([]int, p)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

func (t *inProcTransport) start(rt *Runtime) error {
	t.rt = rt
	return nil
}

func (t *inProcTransport) deposit(dest int, msg message) {
	t.rt.depositLocal(dest, msg)
}

func (t *inProcTransport) remoteSafe(int, vtime.Time) bool { return true }

func (t *inProcTransport) noteState(int) {}

func (t *inProcTransport) allocComm(n int) CommID { return t.rt.allocLocalComm(n) }

func (t *inProcTransport) noteAbort()       {}
func (t *inProcTransport) noteDeparted(int) {}

func (t *inProcTransport) finish(res *Result, departed []bool) (*Result, error) {
	for r, d := range departed {
		if d {
			res.Departed = append(res.Departed, r)
		}
	}
	res.Makespan = vtime.Duration(res.MaxClock())
	return res, nil
}

func (t *inProcTransport) close() {}
