package mpi

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestTreePos(t *testing.T) {
	members := []int{5, 9, 2, 7}
	if TreePos(members, 9) != 1 {
		t.Fatalf("pos of 9")
	}
	if TreePos(members, 4) != -1 {
		t.Fatalf("non-member found")
	}
}

func TestTreeParentChildSymmetry(t *testing.T) {
	// For every tree size, every non-root position's parent must list it
	// as a child, and the root reaches every position.
	for n := 1; n <= 70; n++ {
		for pos := 1; pos < n; pos++ {
			parent := TreeParentPos(pos)
			if parent < 0 || parent >= n {
				t.Fatalf("n=%d pos=%d: parent %d out of range", n, pos, parent)
			}
			found := false
			for _, c := range TreeChildPositions(parent, n) {
				if c == pos {
					found = true
				}
			}
			if !found {
				t.Fatalf("n=%d: parent %d does not list child %d", n, parent, pos)
			}
		}
		// Reachability: BFS from root covers all positions exactly once.
		seen := map[int]bool{0: true}
		frontier := []int{0}
		for len(frontier) > 0 {
			var next []int
			for _, f := range frontier {
				for _, c := range TreeChildPositions(f, n) {
					if seen[c] {
						t.Fatalf("n=%d: position %d reached twice", n, c)
					}
					seen[c] = true
					next = append(next, c)
				}
			}
			frontier = next
		}
		if len(seen) != n {
			t.Fatalf("n=%d: reached %d positions", n, len(seen))
		}
	}
}

func TestTreeParentRoot(t *testing.T) {
	if TreeParentPos(0) != -1 {
		t.Fatalf("root has a parent")
	}
}

func TestTreeDepthLogarithmic(t *testing.T) {
	f := func(x uint16) bool {
		pos := int(x)
		d := TreeDepth(pos)
		// Depth equals popcount, which is at most the bit length.
		return d >= 0 && d <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if TreeDepth(0) != 0 || TreeDepth(1) != 1 || TreeDepth(0b1011) != 3 {
		t.Fatalf("depth wrong")
	}
}

func TestOpCodeStrings(t *testing.T) {
	for op := OpNone; op < numOpCodes; op++ {
		if op.String() == "" || op.String() == "op?" {
			t.Fatalf("op %d has no name", op)
		}
	}
	if OpCode(200).String() != "op?" {
		t.Fatalf("unknown op name")
	}
	if ParseOpCode("Send") != OpSend || ParseOpCode("garbage") != OpNone {
		t.Fatalf("ParseOpCode broken")
	}
}

func TestOpCodeClassification(t *testing.T) {
	if !OpSend.IsPointToPoint() || OpSend.IsCollective() {
		t.Fatalf("Send classification")
	}
	if !OpBarrier.IsCollective() || OpBarrier.IsPointToPoint() {
		t.Fatalf("Barrier classification")
	}
	if OpWait.IsCollective() {
		t.Fatalf("Wait classified collective")
	}
}

func TestMailboxPending(t *testing.T) {
	mb := newMailbox(new(atomic.Bool))
	if mb.pending() != 0 {
		t.Fatalf("fresh mailbox pending")
	}
	mb.deposit(message{comm: CommWorld, source: 1, tag: 2})
	if mb.pending() != 1 {
		t.Fatalf("pending after deposit")
	}
	mb.take(CommWorld, 1, 2)
	if mb.pending() != 0 {
		t.Fatalf("pending after take")
	}
}

func TestMinArrive(t *testing.T) {
	mb := newMailbox(new(atomic.Bool))
	if _, ok := mb.minArrive(); ok {
		t.Fatalf("empty mailbox has minArrive")
	}
	mb.deposit(message{comm: CommWorld, source: 0, tag: 1, arrive: 50})
	mb.deposit(message{comm: CommInternal, source: 1, tag: 2, arrive: 10})
	if m, ok := mb.minArrive(); !ok || m != 10 {
		t.Fatalf("minArrive = %v/%v", m, ok)
	}
}
