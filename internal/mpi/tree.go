package mpi

// This file provides the radix (binomial) tree topology helpers the
// tracing layer uses for its reductions: ScalaTrace consolidates traces
// "in a reduction step over a radix tree rooted in rank 0", and Chameleon
// runs the same reduction over the K lead ranks only.

// TreePos returns self's position in the ordered member list, or -1 if
// self is not a member. Position 0 is the tree root.
func TreePos(members []int, self int) int {
	for i, m := range members {
		if m == self {
			return i
		}
	}
	return -1
}

// TreeParentPos returns the binomial-tree parent position of pos
// (pos - lowest set bit), or -1 for the root.
func TreeParentPos(pos int) int {
	if pos <= 0 {
		return -1
	}
	return pos &^ (pos & -pos)
}

// TreeChildPositions returns the binomial-tree child positions of pos in
// a tree over n members, in ascending mask order (the deterministic
// receive order used by merges). Children of pos are pos|mask for each
// mask = 1, 2, 4, ... below pos's low bit (all masks for the root).
func TreeChildPositions(pos, n int) []int {
	var out []int
	for mask := 1; pos|mask < n; mask <<= 1 {
		if pos&mask != 0 {
			break
		}
		out = append(out, pos|mask)
	}
	return out
}

// TreeDepth returns the depth of position pos in the binomial tree (the
// number of set bits — each set bit is one hop toward the root).
func TreeDepth(pos int) int {
	d := 0
	for pos != 0 {
		pos &= pos - 1
		d++
	}
	return d
}
