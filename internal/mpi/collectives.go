package mpi

// ReduceOp combines two uint64 reduction operands.
type ReduceOp func(a, b uint64) uint64

// Built-in reduction operators.
var (
	OpSum ReduceOp = func(a, b uint64) uint64 { return a + b }
	OpMax ReduceOp = func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b uint64) uint64 {
		if a < b {
			return a
		}
		return b
	}
	OpBor ReduceOp = func(a, b uint64) uint64 { return a | b }
)

// collTag derives a unique internal tag for the seq-th collective on
// communicator id, phase in [0,16). All ranks call collectives on a
// communicator in the same order (an MPI requirement), so tags agree.
func collTag(id CommID, seq, phase int) int {
	return int(id)<<40 | seq<<4 | phase
}

// nextSeq advances this rank's collective sequence number for the
// communicator.
func (c *Comm) nextSeq() int {
	s := c.p.collSeq[c.id]
	c.p.collSeq[c.id] = s + 1
	return s
}

// vrank maps a communicator rank to its position in a tree rooted at
// root.
func vrank(rank, root, p int) int { return (rank - root + p) % p }

func unvrank(vr, root, p int) int { return (vr + root) % p }

// internal returns the untraced alias of this communicator used for
// collective internals (separate matching context, like an MPI
// collective context id).
func (c *Comm) internal() Comm {
	return Comm{p: c.p, id: CommInternal, group: c.group, self: c.self}
}

// treeBcast broadcasts payload down a binomial tree rooted at root and
// returns the (possibly received) payload on every rank.
func (c *Comm) treeBcast(root, tag, bytes int, payload any) any {
	p := len(c.group)
	vr := vrank(c.self, root, p)
	in := c.internal()
	model := c.p.rt.model

	// Canonical binomial broadcast: a non-root rank receives from
	// vr - lowbit(vr); every rank then forwards to vr + mask for each
	// mask below its receive mask.
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			src := unvrank(vr-mask, root, p)
			msg := in.rawRecv(src, tag)
			payload = msg.Payload
			bytes = msg.Bytes
			c.p.Clock.Advance(model.CollectivePerLevel)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < p {
			in.rawSend(unvrank(vr+mask, root, p), tag, bytes, payload)
		}
		mask >>= 1
	}
	return payload
}

// treeReduceU64 reduces val to root over a binomial tree; the reduced
// value is meaningful only at root.
func (c *Comm) treeReduceU64(root, tag int, val uint64, op ReduceOp) uint64 {
	p := len(c.group)
	vr := vrank(c.self, root, p)
	in := c.internal()
	model := c.p.rt.model

	mask := 1
	for mask < p {
		if vr&mask != 0 {
			dst := unvrank(vr&^mask, root, p)
			in.rawSend(dst, tag, 8, val)
			break
		}
		if vr|mask < p {
			src := unvrank(vr|mask, root, p)
			msg := in.rawRecv(src, tag)
			val = op(val, msg.Payload.(uint64))
			c.p.Clock.Advance(model.CollectivePerLevel)
		}
		mask <<= 1
	}
	return val
}

type gatherPair struct {
	Rank int
	Obj  any
}

// treeGather collects every rank's (rank, obj) contribution at root via a
// binomial tree; only root's return value is meaningful (indexed by comm
// rank).
func (c *Comm) treeGather(root, tag, bytes int, obj any) []any {
	p := len(c.group)
	vr := vrank(c.self, root, p)
	in := c.internal()
	model := c.p.rt.model

	acc := []gatherPair{{Rank: c.self, Obj: obj}}
	accBytes := bytes
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			dst := unvrank(vr&^mask, root, p)
			in.rawSend(dst, tag, accBytes, acc)
			return nil
		}
		if vr|mask < p {
			src := unvrank(vr|mask, root, p)
			msg := in.rawRecv(src, tag)
			acc = append(acc, msg.Payload.([]gatherPair)...)
			accBytes += msg.Bytes
			c.p.Clock.Advance(model.CollectivePerLevel)
		}
		mask <<= 1
	}
	if vr != 0 {
		return nil
	}
	out := make([]any, p)
	for _, pr := range acc {
		out[pr.Rank] = pr.Obj
	}
	return out
}

// --- raw (untraced) collectives for the tracing layer ----------------------

// RawBarrier synchronizes all ranks of the communicator (reduce+bcast of
// an empty payload) without interposition.
func (c *Comm) RawBarrier() { c.rawBarrier() }

func (c *Comm) rawBarrier() {
	seq := c.nextSeq()
	c.treeReduceU64(0, collTag(c.id, seq, 0), 0, OpSum)
	c.treeBcast(0, collTag(c.id, seq, 1), 0, nil)
	// A barrier leaves every rank at (at least) the time the last rank
	// reached it plus the tree traversal costs already charged.
}

// RawBcastU64 broadcasts v from root without interposition.
func (c *Comm) RawBcastU64(root int, v uint64) uint64 {
	return c.rawBcastU64(root, v)
}

func (c *Comm) rawBcastU64(root int, v uint64) uint64 {
	seq := c.nextSeq()
	return c.treeBcast(root, collTag(c.id, seq, 0), 8, v).(uint64)
}

// RawReduceU64 reduces v to root without interposition; only root's
// return value is meaningful.
func (c *Comm) RawReduceU64(root int, v uint64, op ReduceOp) uint64 {
	seq := c.nextSeq()
	return c.treeReduceU64(root, collTag(c.id, seq, 0), v, op)
}

// RawAllreduceU64 is Reduce followed by Bcast (the structure Algorithm 1
// prescribes: "Sum all tempReduceVals using MPI_Reduce; MPI_Bcast ... by
// rank root").
func (c *Comm) RawAllreduceU64(v uint64, op ReduceOp) uint64 {
	seq := c.nextSeq()
	r := c.treeReduceU64(0, collTag(c.id, seq, 0), v, op)
	return c.treeBcast(0, collTag(c.id, seq, 1), 8, r).(uint64)
}

// RawBcastObj broadcasts an opaque object of the given payload size from
// root without interposition.
func (c *Comm) RawBcastObj(root int, obj any, bytes int) any {
	seq := c.nextSeq()
	return c.treeBcast(root, collTag(c.id, seq, 0), bytes, obj)
}

// RawGatherObj gathers per-rank objects at root without interposition;
// root receives a slice indexed by comm rank, others nil.
func (c *Comm) RawGatherObj(root int, obj any, bytes int) []any {
	seq := c.nextSeq()
	return c.treeGather(root, collTag(c.id, seq, 0), bytes, obj)
}

// --- public (traced) collectives -------------------------------------------

// Barrier synchronizes the communicator. Marker barriers additionally
// consult the fault injector (when one is configured): a rank scheduled
// to crash here unwinds instead of participating, and once membership
// has shrunk the survivors barrier among themselves.
func (c *Comm) Barrier() {
	if c.id == CommMarker && c.p.rt.fault != nil {
		if c.p.faultMarker() {
			return
		}
	}
	ci := &CallInfo{Op: OpBarrier, Comm: c.id, Dest: NoPeer, Src: NoPeer, Root: NoPeer}
	start := c.p.opBegin(ci)
	c.rawBarrier()
	c.p.opEnd(ci, start)
}

// Bcast broadcasts payload (of the given size) from root and returns it
// on every rank.
func (c *Comm) Bcast(root, bytes int, payload any) any {
	ci := &CallInfo{Op: OpBcast, Comm: c.id, Dest: NoPeer, Src: NoPeer, Root: root, Bytes: bytes}
	start := c.p.opBegin(ci)
	seq := c.nextSeq()
	out := c.treeBcast(root, collTag(c.id, seq, 0), bytes, payload)
	c.p.opEnd(ci, start)
	return out
}

// Reduce reduces val to root with op; bytes sizes the per-rank
// contribution for cost purposes.
func (c *Comm) Reduce(root, bytes int, val uint64, op ReduceOp) uint64 {
	ci := &CallInfo{Op: OpReduce, Comm: c.id, Dest: NoPeer, Src: NoPeer, Root: root, Bytes: bytes}
	start := c.p.opBegin(ci)
	seq := c.nextSeq()
	out := c.treeReduceU64(root, collTag(c.id, seq, 0), val, op)
	c.p.opEnd(ci, start)
	return out
}

// Allreduce reduces val across all ranks and distributes the result.
func (c *Comm) Allreduce(bytes int, val uint64, op ReduceOp) uint64 {
	ci := &CallInfo{Op: OpAllreduce, Comm: c.id, Dest: NoPeer, Src: NoPeer, Root: 0, Bytes: bytes}
	start := c.p.opBegin(ci)
	seq := c.nextSeq()
	r := c.treeReduceU64(0, collTag(c.id, seq, 0), val, op)
	out := c.treeBcast(0, collTag(c.id, seq, 1), 8, r).(uint64)
	c.p.opEnd(ci, start)
	return out
}

// Gather collects per-rank payloads at root (slice indexed by comm rank
// at root, nil elsewhere).
func (c *Comm) Gather(root, bytes int, payload any) []any {
	ci := &CallInfo{Op: OpGather, Comm: c.id, Dest: NoPeer, Src: NoPeer, Root: root, Bytes: bytes}
	start := c.p.opBegin(ci)
	seq := c.nextSeq()
	out := c.treeGather(root, collTag(c.id, seq, 0), bytes, payload)
	c.p.opEnd(ci, start)
	return out
}

// Allgather collects every rank's payload everywhere.
func (c *Comm) Allgather(bytes int, payload any) []any {
	ci := &CallInfo{Op: OpAllgather, Comm: c.id, Dest: NoPeer, Src: NoPeer, Root: 0, Bytes: bytes}
	start := c.p.opBegin(ci)
	seq := c.nextSeq()
	gathered := c.treeGather(root0, collTag(c.id, seq, 0), bytes, payload)
	out := c.treeBcast(root0, collTag(c.id, seq, 1), bytes*len(c.group), gathered)
	c.p.opEnd(ci, start)
	if out == nil {
		return nil
	}
	return out.([]any)
}

const root0 = 0

// Scatter distributes payloads[i] from root to comm rank i; returns this
// rank's element.
func (c *Comm) Scatter(root, bytes int, payloads []any) any {
	ci := &CallInfo{Op: OpScatter, Comm: c.id, Dest: NoPeer, Src: NoPeer, Root: root, Bytes: bytes}
	start := c.p.opBegin(ci)
	seq := c.nextSeq()
	tag := collTag(c.id, seq, 0)
	in := c.internal()
	var mine any
	if c.self == root {
		if payloads != nil {
			mine = payloads[root]
		}
		for r := range c.group {
			if r == root {
				continue
			}
			var obj any
			if payloads != nil {
				obj = payloads[r]
			}
			in.rawSend(r, tag, bytes, obj)
		}
	} else {
		mine = in.rawRecv(root, tag).Payload
	}
	c.p.opEnd(ci, start)
	return mine
}

// Alltoall performs a pairwise exchange of bytes with every other rank
// (payloads are synthetic; only the communication shape and cost matter).
func (c *Comm) Alltoall(bytes int) {
	ci := &CallInfo{Op: OpAlltoall, Comm: c.id, Dest: NoPeer, Src: NoPeer, Root: NoPeer, Bytes: bytes}
	start := c.p.opBegin(ci)
	seq := c.nextSeq()
	tag := collTag(c.id, seq, 0)
	in := c.internal()
	p := len(c.group)
	// Pairwise exchange: in round r, exchange with self XOR r (when that
	// peer exists), the standard power-of-two schedule generalized by
	// skipping out-of-range peers.
	for r := 1; r < nextPow2(p); r++ {
		peer := c.self ^ r
		if peer >= p {
			continue
		}
		in.rawSend(peer, tag, bytes, nil)
		in.rawRecv(peer, tag)
	}
	c.p.opEnd(ci, start)
}

func nextPow2(p int) int {
	v := 1
	for v < p {
		v <<= 1
	}
	return v
}
