package mpi

// This file provides collectives over an explicit member list — the
// shrunken-world primitives the fault-tolerance path runs on once ranks
// have departed. They mirror the binomial-tree algorithms of the full
// communicator collectives (same hop structure, same per-level costs),
// but the tree is built over member *positions* so any subset of world
// ranks can participate. Tags are caller-supplied (members change over
// time, so there is no per-communicator sequence counter to lean on);
// each helper consumes a small contiguous tag block, documented per
// function. All traffic travels on CommInternal, like every other
// tracing-layer message.

// groupComm returns this rank's internal-communicator alias over the
// world group (positions in member lists are translated to world ranks
// before sending, so the world group is the right carrier).
func groupComm(p *Proc) Comm {
	return Comm{p: p, id: CommInternal, group: p.world.group, self: p.rank}
}

// GroupReduceU64 reduces val over members toward members[0] on a
// binomial tree; the reduced value is meaningful only at members[0]
// (second return true). Non-members return immediately. Uses tag.
func GroupReduceU64(p *Proc, members []int, tag int, val uint64, op ReduceOp) (uint64, bool) {
	pos := TreePos(members, p.rank)
	if pos < 0 {
		return val, false
	}
	in := groupComm(p)
	model := p.rt.model
	n := len(members)
	mask := 1
	for mask < n {
		if pos&mask != 0 {
			in.rawSend(members[pos&^mask], tag, 8, val)
			return val, false
		}
		if pos|mask < n {
			msg := in.rawRecv(members[pos|mask], tag)
			val = op(val, msg.Payload.(uint64))
			p.Clock.Advance(model.CollectivePerLevel)
		}
		mask <<= 1
	}
	return val, pos == 0
}

// GroupBcastObj broadcasts obj (of the given payload size) from
// members[0] down the binomial tree and returns it on every member
// (non-members get obj back unchanged). Uses tag.
func GroupBcastObj(p *Proc, members []int, tag int, obj any, bytes int) any {
	pos := TreePos(members, p.rank)
	if pos < 0 {
		return obj
	}
	in := groupComm(p)
	model := p.rt.model
	n := len(members)
	mask := 1
	for mask < n {
		if pos&mask != 0 {
			msg := in.rawRecv(members[pos&^mask], tag)
			obj = msg.Payload
			bytes = msg.Bytes
			p.Clock.Advance(model.CollectivePerLevel)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if pos+mask < n && pos&mask == 0 {
			in.rawSend(members[pos+mask], tag, bytes, obj)
		}
		mask >>= 1
	}
	return obj
}

// GroupBcastU64 broadcasts v from members[0]. Uses tag.
func GroupBcastU64(p *Proc, members []int, tag int, v uint64) uint64 {
	return GroupBcastObj(p, members, tag, v, 8).(uint64)
}

// GroupAllreduceU64 reduces val over members and distributes the result
// (reduce to members[0], then broadcast — the Algorithm 1 structure).
// Uses tags tag and tag|1.
func GroupAllreduceU64(p *Proc, members []int, tag int, val uint64, op ReduceOp) uint64 {
	r, _ := GroupReduceU64(p, members, tag, val, op)
	return GroupBcastU64(p, members, tag|1, r)
}

// GroupBarrier synchronizes the members (reduce+bcast of an empty
// payload). Uses tags tag and tag|1.
func GroupBarrier(p *Proc, members []int, tag int) {
	GroupReduceU64(p, members, tag, 0, OpSum)
	GroupBcastU64(p, members, tag|1, 0)
}

// GroupGatherObj collects every member's contribution at members[0]
// (returned slice indexed by member position; nil elsewhere). Uses tag.
func GroupGatherObj(p *Proc, members []int, tag, bytes int, obj any) []any {
	pos := TreePos(members, p.rank)
	if pos < 0 {
		return nil
	}
	in := groupComm(p)
	model := p.rt.model
	n := len(members)
	acc := []gatherPair{{Rank: pos, Obj: obj}}
	accBytes := bytes
	mask := 1
	for mask < n {
		if pos&mask != 0 {
			in.rawSend(members[pos&^mask], tag, accBytes, acc)
			return nil
		}
		if pos|mask < n {
			msg := in.rawRecv(members[pos|mask], tag)
			acc = append(acc, msg.Payload.([]gatherPair)...)
			accBytes += msg.Bytes
			p.Clock.Advance(model.CollectivePerLevel)
		}
		mask <<= 1
	}
	if pos != 0 {
		return nil
	}
	out := make([]any, n)
	for _, pr := range acc {
		out[pr.Rank] = pr.Obj
	}
	return out
}

// GroupScatter sends bytes from members[0] to every other member (the
// payloads are synthetic, as in Comm.Scatter during replay). Uses tag.
func GroupScatter(p *Proc, members []int, tag, bytes int) {
	pos := TreePos(members, p.rank)
	if pos < 0 {
		return
	}
	in := groupComm(p)
	if pos == 0 {
		for i := 1; i < len(members); i++ {
			in.rawSend(members[i], tag, bytes, nil)
		}
		return
	}
	in.rawRecv(members[0], tag)
}

// GroupAlltoall performs the pairwise exchange schedule of
// Comm.Alltoall over the member positions. Uses tag.
func GroupAlltoall(p *Proc, members []int, tag, bytes int) {
	pos := TreePos(members, p.rank)
	if pos < 0 {
		return
	}
	in := groupComm(p)
	n := len(members)
	for r := 1; r < nextPow2(n); r++ {
		peer := pos ^ r
		if peer >= n {
			continue
		}
		in.rawSend(members[peer], tag, bytes, nil)
		in.rawRecv(members[peer], tag)
	}
}
