package mpi

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
)

// Payload wire encoding. In-process, a message's payload travels by
// reference; across a TCP transport it must be serialized. Three kinds
// cover the runtime's own traffic — nil (the common case: benchmarks
// ship shape, not data), uint64 (reductions, ID broadcasts), and
// []gatherPair (the gather collectives' structural accumulator, encoded
// recursively). Everything else goes through a registered PayloadCodec:
// the runtime cannot import the packages whose values ride on it
// (trace nodes, cluster items — they import mpi), so glue code outside
// this package registers codecs for them (see internal/fleet).
//
// Layout (all integers unsigned varints):
//
//	payload := kind rest
//	kind 0 (nil):     —
//	kind 1 (uint64):  value
//	kind 2 (pairs):   n, then n × (rank, payload)
//	kind 3 (codec):   len(name), name, len(data), data
//	kind 4 (list):    n, then n × payload
const (
	payloadNil    = 0
	payloadU64    = 1
	payloadPairs  = 2
	payloadCodec  = 3
	payloadList   = 4
	maxCodecName  = 256
	maxPairCount  = 1 << 20
	maxPairsDepth = 4
)

// PayloadCodec teaches the TCP transport to carry one concrete payload
// type across process boundaries. Encode receives a value of exactly
// the registered type; Decode must return the same concrete type.
type PayloadCodec struct {
	// Name identifies the codec on the wire; both sides of a fleet must
	// register the same names (same binary ⇒ always true).
	Name string
	// Zero is a value of the concrete Go type the codec handles.
	Zero any
	// Encode serializes a value of the registered type.
	Encode func(v any) ([]byte, error)
	// Decode reverses Encode.
	Decode func(data []byte) (any, error)
}

var wireReg = struct {
	mu     sync.RWMutex
	byName map[string]*PayloadCodec
	byType map[reflect.Type]*PayloadCodec
}{
	byName: map[string]*PayloadCodec{},
	byType: map[reflect.Type]*PayloadCodec{},
}

// RegisterPayloadCodec installs a codec for cross-process payloads.
// Registering the same name twice replaces the previous codec (so
// package-level init registration stays idempotent under test re-runs).
func RegisterPayloadCodec(c PayloadCodec) {
	if c.Name == "" || len(c.Name) > maxCodecName {
		panic(fmt.Sprintf("mpi: invalid payload codec name %q", c.Name))
	}
	if c.Zero == nil || c.Encode == nil || c.Decode == nil {
		panic(fmt.Sprintf("mpi: payload codec %q incomplete", c.Name))
	}
	t := reflect.TypeOf(c.Zero)
	wireReg.mu.Lock()
	defer wireReg.mu.Unlock()
	if prev, ok := wireReg.byType[t]; ok && prev.Name != c.Name {
		panic(fmt.Sprintf("mpi: payload type %v already registered as %q", t, prev.Name))
	}
	cp := c
	wireReg.byName[c.Name] = &cp
	wireReg.byType[t] = &cp
}

// LookupPayloadCodec returns the codec registered under name.
func LookupPayloadCodec(name string) (PayloadCodec, bool) {
	wireReg.mu.RLock()
	defer wireReg.mu.RUnlock()
	c, ok := wireReg.byName[name]
	if !ok {
		return PayloadCodec{}, false
	}
	return *c, true
}

// jsonPayloadCodec builds a PayloadCodec backed by encoding/json for a
// concrete type T.
func jsonPayloadCodec[T any](name string) PayloadCodec {
	return PayloadCodec{
		Name: name,
		Zero: *new(T),
		Encode: func(v any) ([]byte, error) {
			return json.Marshal(v.(T))
		},
		Decode: func(data []byte) (any, error) {
			var out T
			if err := json.Unmarshal(data, &out); err != nil {
				return nil, err
			}
			return out, nil
		},
	}
}

func init() {
	// The runtime's own cross-process payload types. Application and
	// tracing-layer types (trace nodes, cluster items) register from
	// internal/fleet, which may import them.
	RegisterPayloadCodec(jsonPayloadCodec[int]("mpi.int"))
	RegisterPayloadCodec(jsonPayloadCodec[string]("mpi.string"))
	RegisterPayloadCodec(jsonPayloadCodec[[]int]("mpi.ints"))
	RegisterPayloadCodec(jsonPayloadCodec[splitEntry]("mpi.splitEntry"))
	RegisterPayloadCodec(jsonPayloadCodec[map[int][]int]("mpi.splitLayout"))
}

// appendPayload serializes v onto dst.
func appendPayload(dst []byte, v any, depth int) ([]byte, error) {
	if depth > maxPairsDepth {
		return nil, fmt.Errorf("mpi: payload nesting exceeds %d", maxPairsDepth)
	}
	switch pv := v.(type) {
	case nil:
		return append(dst, payloadNil), nil
	case uint64:
		dst = append(dst, payloadU64)
		return binary.AppendUvarint(dst, pv), nil
	case []gatherPair:
		if len(pv) > maxPairCount {
			return nil, fmt.Errorf("mpi: gather payload of %d pairs exceeds cap", len(pv))
		}
		dst = append(dst, payloadPairs)
		dst = binary.AppendUvarint(dst, uint64(len(pv)))
		var err error
		for i := range pv {
			if pv[i].Rank < 0 {
				return nil, fmt.Errorf("mpi: negative gather rank %d", pv[i].Rank)
			}
			dst = binary.AppendUvarint(dst, uint64(pv[i].Rank))
			if dst, err = appendPayload(dst, pv[i].Obj, depth+1); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case []any:
		// Gather results rebroadcast by Allgather/Allgatherv and Scatter
		// inputs: a heterogeneous list, encoded element-recursively.
		if len(pv) > maxPairCount {
			return nil, fmt.Errorf("mpi: list payload of %d elements exceeds cap", len(pv))
		}
		dst = append(dst, payloadList)
		dst = binary.AppendUvarint(dst, uint64(len(pv)))
		var err error
		for i := range pv {
			if dst, err = appendPayload(dst, pv[i], depth+1); err != nil {
				return nil, err
			}
		}
		return dst, nil
	}
	t := reflect.TypeOf(v)
	wireReg.mu.RLock()
	c := wireReg.byType[t]
	wireReg.mu.RUnlock()
	if c == nil {
		return nil, fmt.Errorf("mpi: payload type %T has no wire codec; register one with mpi.RegisterPayloadCodec", v)
	}
	data, err := c.Encode(v)
	if err != nil {
		return nil, fmt.Errorf("mpi: encode payload %T via %q: %w", v, c.Name, err)
	}
	dst = append(dst, payloadCodec)
	dst = binary.AppendUvarint(dst, uint64(len(c.Name)))
	dst = append(dst, c.Name...)
	dst = binary.AppendUvarint(dst, uint64(len(data)))
	return append(dst, data...), nil
}

// decodePayload deserializes one payload from b, returning the value
// and the unconsumed remainder. Every length is bounds-checked against
// the buffer so a poisoned frame cannot drive allocation beyond its own
// size.
func decodePayload(b []byte, depth int) (any, []byte, error) {
	if depth > maxPairsDepth {
		return nil, nil, fmt.Errorf("mpi: payload nesting exceeds %d", maxPairsDepth)
	}
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("mpi: truncated payload")
	}
	kind := b[0]
	b = b[1:]
	switch kind {
	case payloadNil:
		return nil, b, nil
	case payloadU64:
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, nil, fmt.Errorf("mpi: bad uint64 payload")
		}
		return v, b[n:], nil
	case payloadPairs:
		count, n := binary.Uvarint(b)
		if n <= 0 || count > maxPairCount || count > uint64(len(b)) {
			return nil, nil, fmt.Errorf("mpi: bad gather pair count")
		}
		b = b[n:]
		pairs := make([]gatherPair, 0, count)
		for i := uint64(0); i < count; i++ {
			rank, n := binary.Uvarint(b)
			if n <= 0 || rank > 1<<31 {
				return nil, nil, fmt.Errorf("mpi: bad gather rank")
			}
			b = b[n:]
			obj, rest, err := decodePayload(b, depth+1)
			if err != nil {
				return nil, nil, err
			}
			b = rest
			pairs = append(pairs, gatherPair{Rank: int(rank), Obj: obj})
		}
		return pairs, b, nil
	case payloadList:
		count, n := binary.Uvarint(b)
		if n <= 0 || count > maxPairCount || count > uint64(len(b)) {
			return nil, nil, fmt.Errorf("mpi: bad list payload count")
		}
		b = b[n:]
		list := make([]any, 0, count)
		for i := uint64(0); i < count; i++ {
			el, rest, err := decodePayload(b, depth+1)
			if err != nil {
				return nil, nil, err
			}
			b = rest
			list = append(list, el)
		}
		return list, b, nil
	case payloadCodec:
		nameLen, n := binary.Uvarint(b)
		if n <= 0 || nameLen == 0 || nameLen > maxCodecName || nameLen > uint64(len(b)-n) {
			return nil, nil, fmt.Errorf("mpi: bad codec name length")
		}
		b = b[n:]
		name := string(b[:nameLen])
		b = b[nameLen:]
		dataLen, n := binary.Uvarint(b)
		if n <= 0 || dataLen > uint64(len(b)-n) {
			return nil, nil, fmt.Errorf("mpi: bad codec data length")
		}
		b = b[n:]
		data := b[:dataLen]
		b = b[dataLen:]
		wireReg.mu.RLock()
		c := wireReg.byName[name]
		wireReg.mu.RUnlock()
		if c == nil {
			return nil, nil, fmt.Errorf("mpi: unknown payload codec %q", name)
		}
		v, err := c.Decode(data)
		if err != nil {
			return nil, nil, fmt.Errorf("mpi: decode payload via %q: %w", name, err)
		}
		return v, b, nil
	}
	return nil, nil, fmt.Errorf("mpi: unknown payload kind %d", kind)
}
