// Package mpi is a deterministic, in-process simulation of the MPI
// runtime the paper's tracing stack interposes on.
//
// Each MPI rank is a goroutine driving a Proc handle. Point-to-point and
// collective operations have MPI matching semantics (communicators, tag
// and source wildcards, non-overtaking order) and advance per-rank
// virtual clocks according to a vtime.CostModel, so the maximum final
// clock is the virtual makespan of the run. An Interposer receives a
// Pre/Post callback around every public operation — the Go equivalent of
// the PMPI profiling layer ScalaTrace and Chameleon hook into. The Raw*
// variants perform the same communication without interposition and are
// what the tracing layer itself uses, mirroring how PMPI tools call
// PMPI_* internals.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"chameleon/internal/fault"
	"chameleon/internal/obs"
	"chameleon/internal/vtime"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// NoPeer marks a call with no peer rank (collectives, Wait).
const NoPeer = -2

// CommID identifies a communicator. Matching requires equal CommIDs.
type CommID int32

// Reserved communicators.
const (
	// CommWorld is MPI_COMM_WORLD.
	CommWorld CommID = 0
	// CommMarker is the communicator Chameleon reserves for its marker
	// barrier ("a unique value [in] the communicator field").
	CommMarker CommID = 1
	// CommInternal carries the tracing layer's own (untraced) messages so
	// they can never match application receives.
	CommInternal CommID = 2
	// commUserBase is the first CommID handed to user Dup calls.
	commUserBase CommID = 16
)

// CallInfo describes one intercepted MPI call for the interposition
// layer.
type CallInfo struct {
	Op    OpCode
	Comm  CommID
	Dest  int // destination rank (sends, Sendrecv) or NoPeer
	Src   int // source rank (recvs, Sendrecv; may be AnySource) or NoPeer
	Root  int // root rank for rooted collectives, else NoPeer
	Tag   int
	Bytes int // payload size of this rank's contribution
	// MatchedSrc is filled in by Post for receives: the actual source the
	// message was matched from (resolves AnySource).
	MatchedSrc int
}

// Interposer is the PMPI-style hook interface. Pre runs before the
// operation's communication; Post runs after it completes. Both run on
// the rank's own goroutine.
type Interposer interface {
	Pre(ci *CallInfo)
	Post(ci *CallInfo)
	// Finalize is invoked collectively (all ranks) after the application
	// body returns, mirroring the MPI_Finalize PMPI wrapper where
	// ScalaTrace performs inter-node compression.
	Finalize()
}

// NopInterposer ignores all hooks (running without a tracer).
type NopInterposer struct{}

// Pre implements Interposer.
func (NopInterposer) Pre(*CallInfo) {}

// Post implements Interposer.
func (NopInterposer) Post(*CallInfo) {}

// Finalize implements Interposer.
func (NopInterposer) Finalize() {}

// rankState tracks what a rank is doing, for conservative wildcard
// matching.
type rankState int32

const (
	stateActive     rankState = iota // executing application code
	stateBlocked                     // blocked in a receive
	stateFinalizing                  // past the application body: only
	// tracing-layer (internal) traffic can follow
	stateDone // body and finalize complete
)

// Runtime is one simulated MPI job (or, under a network transport, this
// process's share of one).
type Runtime struct {
	p     int
	model vtime.CostModel
	// tr routes messages and scopes matcher visibility; local lists the
	// world ranks hosted in this process (all of them for the default
	// in-process transport). mailboxes and procs are indexed by world
	// rank and nil for remote ranks.
	tr        Transport
	local     []int
	mailboxes []*mailbox
	procs     []*Proc
	nextComm  CommID
	commMu    sync.Mutex

	// states holds each rank's rankState (atomic).
	states []atomic.Int32
	// gmu/gcond/generation implement the global change notification
	// conservative ANY_SOURCE matching waits on: every deposit and
	// every rank-state transition bumps the generation.
	gmu        sync.Mutex
	gcond      *sync.Cond
	generation uint64
	// anyWaiters gates the generation bumping: when no wildcard matcher
	// is waiting (the common case), deposits skip the global broadcast.
	anyWaiters atomic.Int32
	// aborted is set when any rank panics so blocked peers unwind.
	aborted atomic.Bool
	// obs/met are the run's observability sinks (nil when disabled).
	obs *obs.Observer
	met *opMetrics
	// causal caches obs.Causal so the per-message hot path tests one
	// pointer instead of chasing two.
	causal *obs.Causal
	// progress caches obs.Progress for the live-telemetry hooks (nil
	// when live tracking is off; every method is nil-safe).
	progress *obs.Progress
	// fault is the run's fault injector (nil = zero-fault mode).
	fault *fault.Injector
}

// errAborted is the sentinel blocked ranks panic with after a peer rank
// failed; Run recognizes and suppresses it in favor of the root cause.
type abortError struct{}

func (abortError) Error() string { return "mpi: run aborted by peer failure" }

var errAborted = abortError{}

// abort marks the run failed and wakes every blocked rank. Network
// transports relay the abort to peer processes.
func (rt *Runtime) abort() {
	rt.aborted.Store(true)
	rt.abortLocal()
	rt.tr.noteAbort()
}

// abortLocal wakes this process's blocked ranks (the local half of
// abort, also entered when a peer process reports failure).
func (rt *Runtime) abortLocal() {
	rt.aborted.Store(true)
	for _, mb := range rt.mailboxes {
		if mb != nil {
			mb.cond.Broadcast()
		}
	}
	rt.bump()
}

// takeAny performs a conservative wildcard receive for rank self: it
// repeatedly picks the earliest-arrival candidate and matches it only
// once lbtsSafe proves no earlier message can still appear.
func (rt *Runtime) takeAny(self int, mb *mailbox, comm CommID, tag int) message {
	rt.anyWaiters.Add(1)
	defer rt.anyWaiters.Add(-1)
	for {
		g := rt.gen()
		mb.mu.Lock()
		best := mb.scanAny(comm, tag)
		var cand message
		if best >= 0 {
			cand = mb.msgs[best]
		}
		mb.mu.Unlock()
		// The safety scan is only trusted if no deposit or rank-state
		// transition interleaved with it (the generation is unchanged);
		// clock advances alone only strengthen the bound, so they need
		// no bump. On any interleaving, re-evaluate.
		if best >= 0 && rt.lbtsSafe(self, cand.arrive) && rt.gen() == g {
			// Re-take under the lock: only earlier candidates can have
			// appeared meanwhile, and safety is monotone downward.
			mb.mu.Lock()
			i := mb.scanAny(comm, tag)
			msg := mb.msgs[i]
			mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
			mb.mu.Unlock()
			return msg
		}
		if rt.gen() != g {
			continue
		}
		if rt.aborted.Load() {
			panic(errAborted)
		}
		rt.waitChange(g)
	}
}

// bump signals a global state change to wildcard matchers.
func (rt *Runtime) bump() {
	rt.gmu.Lock()
	rt.generation++
	rt.gcond.Broadcast()
	rt.gmu.Unlock()
}

// gen snapshots the change generation.
func (rt *Runtime) gen() uint64 {
	rt.gmu.Lock()
	g := rt.generation
	rt.gmu.Unlock()
	return g
}

// waitChange blocks until the generation moves past old.
func (rt *Runtime) waitChange(old uint64) {
	rt.gmu.Lock()
	for rt.generation == old {
		rt.gcond.Wait()
	}
	rt.gmu.Unlock()
}

// setState transitions a rank's state and wakes wildcard matchers.
// Network transports additionally fold the transition into their
// stability generation so peer bound-sweeps observe it.
func (rt *Runtime) setState(rank int, s rankState) {
	rt.states[rank].Store(int32(s))
	if rt.anyWaiters.Load() > 0 {
		rt.bump()
	}
	rt.tr.noteState(rank)
}

// depositLocal enqueues a message for a rank hosted in this process and
// wakes wildcard matchers; both transport backends route local
// deliveries through it.
func (rt *Runtime) depositLocal(dest int, msg message) {
	rt.mailboxes[dest].deposit(msg)
	if rt.anyWaiters.Load() > 0 {
		rt.bump()
	}
}

// lbtsSafe reports whether a wildcard match at arrival time t on rank
// self is conservative: no other rank can still produce a message that
// would arrive earlier. An active rank's future sends arrive no earlier
// than its clock plus the send latency. A blocked rank acts again only
// at max(its clock, its earliest pending arrival) — both only grow — so
// that maximum plus the latency bounds its future influence (this
// includes ranks blocked inside collectives mid-run: a pending internal
// message can be the first link of a chain that returns them to
// application code). Finalizing and done ranks can never send
// application messages again and are exempt. This is the
// lower-bound-time-stamp rule of conservative parallel discrete-event
// simulation, specialized to the one-hop unblocking chain.
func (rt *Runtime) lbtsSafe(self int, t vtime.Time) bool {
	alpha := vtime.Time(rt.model.Alpha)
	for _, r := range rt.local {
		if r == self {
			continue
		}
		switch rankState(rt.states[r].Load()) {
		case stateDone, stateFinalizing:
			// Past the application body: no further application sends.
			continue
		case stateActive:
			if rt.procs[r].Clock.Now()+alpha < t {
				return false
			}
		default:
			// Blocked in a receive: only a message matching the blocked
			// pattern can unblock the rank, no earlier than max(its
			// clock, the matching message's arrival). No matching
			// pending message means it waits on a future deposit from a
			// rank already accounted for.
			proc := rt.procs[r]
			bound, ok := rt.mailboxes[r].minArriveMatching(
				CommID(proc.blockedComm.Load()),
				int(proc.blockedSrc.Load()),
				int(proc.blockedTag.Load()),
			)
			if !ok {
				continue
			}
			if c := proc.Clock.Now(); c > bound {
				bound = c
			}
			if bound+alpha < t {
				return false
			}
		}
	}
	// Ranks hosted by other processes are the transport's to bound (the
	// in-process backend hosts everyone and answers true immediately).
	return rt.tr.remoteSafe(self, t)
}

// Proc is the per-rank handle passed to the application body. All of its
// methods must be called from the rank's own goroutine.
type Proc struct {
	rank   int
	rt     *Runtime
	Clock  *vtime.Clock
	Ledger *vtime.Ledger
	hooks  Interposer
	world  *Comm
	marker *Comm
	// blockedComm/Src/Tag record what this rank's in-progress receive is
	// waiting for, for the conservative matcher's unblock bound. Written
	// by the rank before it enters the blocked state.
	blockedComm atomic.Int32
	blockedSrc  atomic.Int64
	blockedTag  atomic.Int64
	// collSeq disambiguates successive collectives per communicator.
	collSeq map[CommID]int
	// markerSeq counts marker barriers this rank has entered (1-based),
	// the clock the fault injector schedules crashes against.
	markerSeq int
	// sendSeq numbers this rank's causal-stamped sends (1-based).
	sendSeq uint64
	// ctxName/ctxSeq label the collective instance this rank is currently
	// executing, copied onto every edge it records (see CausalContext).
	// markerCt counts marker barriers for op-derived contexts.
	ctxName  string
	ctxSeq   int
	markerCt int
	// opPrevName/opPrevSeq save the outer context across an op-derived
	// context installed by opBegin (restored in opEnd).
	opPrevName string
	opPrevSeq  int
	// aliveView/epoch/deadView/shrunk are this rank's membership view
	// under fault injection; aliveView stays nil while all ranks live.
	aliveView []int
	epoch     int
	deadView  map[int]bool
	shrunk    *Comm
}

// Rank returns this process's rank in CommWorld.
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks in the job.
func (p *Proc) Size() int { return p.rt.p }

// Model returns the runtime's cost model.
func (p *Proc) Model() vtime.CostModel { return p.rt.model }

// World returns this rank's CommWorld handle.
func (p *Proc) World() *Comm { return p.world }

// MarkerComm returns the reserved marker communicator (same group as
// world, distinct CommID).
func (p *Proc) MarkerComm() *Comm { return p.marker }

// SetInterposer installs the PMPI-style hook chain for this rank.
func (p *Proc) SetInterposer(h Interposer) {
	if h == nil {
		h = NopInterposer{}
	}
	p.hooks = h
}

// Interposer returns the installed hook chain.
func (p *Proc) Interposer() Interposer { return p.hooks }

// Obs returns the run's observer (nil when observability is disabled).
// The tracing layers pull it from here so no extra plumbing is needed.
func (p *Proc) Obs() *obs.Observer { return p.rt.obs }

// noRestore is the shared no-op restore closure handed out when causal
// capture is disabled, so context sites allocate nothing in that case.
var noRestore = func() {}

// CausalContext names the collective instance this rank is about to
// execute: every causal edge the rank records until the returned restore
// runs carries (name, seq) as its Ctx/CtxSeq. Callers defer the restore:
//
//	defer p.CausalContext("vote", markerIdx)()
//
// With causal capture disabled this is one pointer test and no
// allocation.
func (p *Proc) CausalContext(name string, seq int) func() {
	if p.rt.causal == nil {
		return noRestore
	}
	prevName, prevSeq := p.ctxName, p.ctxSeq
	p.ctxName, p.ctxSeq = name, seq
	return func() { p.ctxName, p.ctxSeq = prevName, prevSeq }
}

// CausalContextDefault is CausalContext except an already-named outer
// context wins: library helpers (cluster membership exchange, tracer
// merges) use it so a caller's more specific name is never clobbered.
func (p *Proc) CausalContextDefault(name string, seq int) func() {
	if p.rt.causal == nil || p.ctxName != "" {
		return noRestore
	}
	return p.CausalContext(name, seq)
}

// Compute advances this rank's virtual clock by d of application
// computation. The tracing layer observes it as inter-event delta time.
// Under fault injection the nominal duration may be stretched; the
// excess is booked to CatFault so overhead accounting stays clean.
func (p *Proc) Compute(d vtime.Duration) {
	p.Ledger.Charge(vtime.CatApp, d)
	if f := p.rt.fault; f != nil {
		if extra := f.PerturbCompute(p.rank, p.Clock.Now(), d) - d; extra > 0 {
			p.Ledger.Charge(vtime.CatFault, extra)
			p.rt.met.faultDelays.Inc()
			p.rt.met.faultDelayNs.Observe(int64(extra))
			d += extra
		}
	}
	// Post-perturbation, so a fault-slowed rank's stretch is visible on
	// the live progress board.
	p.rt.progress.AddCompute(p.rank, int64(d))
	if o := p.rt.obs; o != nil {
		start := p.Clock.Now()
		p.Clock.Advance(d)
		p.rt.met.computeCalls.Inc()
		p.rt.met.computeNs.Observe(int64(d))
		o.Span(p.rank, "compute", obs.CatCompute, start, p.Clock.Now())
		return
	}
	p.Clock.Advance(d)
}

// ChargeOverhead advances the clock by d and books it to category c;
// used by the tracing layer to account its own work on the virtual
// timeline.
func (p *Proc) ChargeOverhead(c vtime.Category, d vtime.Duration) {
	p.Ledger.Charge(c, d)
	if o := p.rt.obs; o != nil && d > 0 {
		start := p.Clock.Now()
		p.Clock.Advance(d)
		name, cat := overheadSpan(c)
		o.Span(p.rank, name, cat, start, p.Clock.Now())
		return
	}
	p.Clock.Advance(d)
}

// Comm is one rank's handle on a communicator.
type Comm struct {
	p     *Proc
	id    CommID
	group []int // world ranks in this communicator, position = comm rank
	self  int   // this rank's position in group
}

// ID returns the communicator identity.
func (c *Comm) ID() CommID { return c.id }

// Size returns the communicator group size.
func (c *Comm) Size() int { return len(c.group) }

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.self }

// Proc returns the owning process handle.
func (c *Comm) Proc() *Proc { return c.p }

// worldRank translates a communicator rank to a world rank.
func (c *Comm) worldRank(r int) int { return c.group[r] }

// Dup creates a new communicator with the same group. It must be called
// by all members; the CommID is derived deterministically from a shared
// counter fetched at the same collective point.
func (c *Comm) Dup() *Comm {
	// Synchronize the group, then allocate one shared ID at the root and
	// broadcast it.
	c.rawBarrier()
	var id CommID
	if c.self == 0 {
		id = c.p.rt.tr.allocComm(1)
	}
	id = CommID(c.rawBcastU64(0, uint64(id)))
	return &Comm{p: c.p, id: id, group: c.group, self: c.self}
}

// allocLocalComm reserves n consecutive CommIDs from this process's
// counter. The in-process transport uses it directly; the TCP transport
// instead asks the rendezvous coordinator so IDs stay world-unique.
func (rt *Runtime) allocLocalComm(n int) CommID {
	rt.commMu.Lock()
	defer rt.commMu.Unlock()
	id := rt.nextComm
	rt.nextComm += CommID(n)
	return id
}

// Config parameterizes a simulated run.
type Config struct {
	// P is the number of ranks.
	P int
	// Model is the virtual cost model (vtime.Default() if zero).
	Model vtime.CostModel
	// Hooks builds the per-rank interposer; nil runs untraced.
	Hooks func(p *Proc) Interposer
	// Obs receives runtime metrics, journal events, and timeline spans
	// (nil runs unobserved, at zero cost on the hot paths).
	Obs *obs.Observer
	// Fault injects crashes and perturbations (nil = none). Under a
	// network transport every process must be built with the same plan
	// and seed: the shared schedule doubles as the failure detector.
	Fault *fault.Injector
	// Transport routes messages between ranks. Nil hosts all P ranks in
	// this process (the historical behavior); a TCP transport hosts a
	// slice of the world here and the rest across OS processes.
	Transport Transport
}

// Result summarizes a completed run.
type Result struct {
	P        int
	Clocks   []vtime.Time
	Ledgers  []*vtime.Ledger
	Makespan vtime.Duration
	// Departed lists ranks that crash-stopped mid-run (sorted; empty
	// without fault injection).
	Departed []int
}

// AggregateLedger sums all per-rank ledgers (the paper reports
// "aggregated wall-clock times across all nodes").
func (r *Result) AggregateLedger() *vtime.Ledger {
	var agg vtime.Ledger
	for _, l := range r.Ledgers {
		agg.Merge(l)
	}
	return &agg
}

// MaxClock returns the latest per-rank final time.
func (r *Result) MaxClock() vtime.Time {
	var m vtime.Time
	for _, c := range r.Clocks {
		m = vtime.Max(m, c)
	}
	return m
}

// Run executes body on cfg.P simulated ranks and blocks until all ranks
// (and their Finalize hooks) complete.
func Run(cfg Config, body func(p *Proc)) (*Result, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("mpi: invalid rank count %d", cfg.P)
	}
	if cfg.Fault != nil && cfg.Fault.Ranks() != cfg.P {
		return nil, fmt.Errorf("mpi: fault injector built for %d ranks, run has %d", cfg.Fault.Ranks(), cfg.P)
	}
	zero := vtime.CostModel{}
	if cfg.Model == zero {
		cfg.Model = vtime.Default()
	}
	tr := cfg.Transport
	if tr == nil {
		tr = &inProcTransport{}
	}
	rt := &Runtime{
		p:         cfg.P,
		model:     cfg.Model,
		tr:        tr,
		local:     tr.localRanks(cfg.P),
		mailboxes: make([]*mailbox, cfg.P),
		procs:     make([]*Proc, cfg.P),
		nextComm:  commUserBase,
		states:    make([]atomic.Int32, cfg.P),
		obs:       cfg.Obs,
		met:       newOpMetrics(cfg.Obs),
		causal:    cfg.Obs.CausalStore(),
		progress:  cfg.Obs.ProgressBoard(),
		fault:     cfg.Fault,
	}
	rt.gcond = sync.NewCond(&rt.gmu)
	group := make([]int, cfg.P)
	for i := range group {
		group[i] = i
	}
	for _, r := range rt.local {
		rt.mailboxes[r] = newMailbox(&rt.aborted)
		p := &Proc{
			rank:    r,
			rt:      rt,
			Clock:   &vtime.Clock{},
			Ledger:  &vtime.Ledger{},
			hooks:   NopInterposer{},
			collSeq: make(map[CommID]int),
		}
		p.world = &Comm{p: p, id: CommWorld, group: group, self: r}
		p.marker = &Comm{p: p, id: CommMarker, group: group, self: r}
		rt.procs[r] = p
	}
	if cfg.Hooks != nil {
		for _, r := range rt.local {
			p := rt.procs[r]
			p.SetInterposer(cfg.Hooks(p))
		}
	}
	if err := tr.start(rt); err != nil {
		return nil, err
	}

	var wg sync.WaitGroup
	panics := make([]any, cfg.P)
	departed := make([]bool, cfg.P)
	for _, r := range rt.local {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					if _, crashed := e.(crashExit); crashed && rt.fault != nil {
						// Scheduled crash-stop: the rank leaves quietly;
						// survivors already exclude it from every
						// subsequent barrier and collective.
						departed[p.rank] = true
						rt.progress.Depart(p.rank)
						rt.setState(p.rank, stateDone)
						rt.tr.noteDeparted(p.rank)
						return
					}
					panics[p.rank] = e
					rt.setState(p.rank, stateDone)
					// Unblock peers waiting on this rank; they unwind
					// with errAborted.
					p.rt.abort()
				}
			}()
			body(p)
			// Past the body: only tracing-layer traffic follows, which
			// the conservative wildcard matcher may disregard.
			rt.setState(p.rank, stateFinalizing)
			// MPI_Finalize: collective point where tracers flush.
			ci := &CallInfo{Op: OpFinalize, Comm: CommWorld, Dest: NoPeer, Src: NoPeer, Root: 0}
			start := p.opBegin(ci)
			if rt.fault != nil && p.aliveView != nil {
				// Survivors synchronize among themselves; the departed
				// never reach finalize.
				GroupBarrier(p, p.aliveView, groupFinalizeTag)
			} else {
				p.world.rawBarrier()
			}
			p.opEnd(ci, start)
			p.hooks.Finalize()
			rt.setState(p.rank, stateDone)
		}(rt.procs[r])
	}
	wg.Wait()
	var firstErr error
	for r, e := range panics {
		if e == nil {
			continue
		}
		if _, cascade := e.(abortError); cascade {
			continue // victim of another rank's failure
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("mpi: rank %d panicked: %v", r, e)
		}
	}
	if firstErr != nil {
		tr.close()
		return nil, firstErr
	}
	if rt.aborted.Load() {
		tr.close()
		return nil, fmt.Errorf("mpi: run aborted")
	}
	res := &Result{P: cfg.P, Clocks: make([]vtime.Time, cfg.P), Ledgers: make([]*vtime.Ledger, cfg.P)}
	for _, r := range rt.local {
		res.Clocks[r] = rt.procs[r].Clock.Now()
		res.Ledgers[r] = rt.procs[r].Ledger
	}
	// The transport completes the picture: the in-process backend owns
	// every rank already; a network backend exchanges per-rank results
	// so all processes return the same world-wide Result.
	res, err := tr.finish(res, departed)
	tr.close()
	if err != nil {
		return nil, err
	}
	return res, nil
}
