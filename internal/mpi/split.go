package mpi

import "sort"

// splitEntry is one rank's (color, key) contribution to Split's root
// gather. Package-level (not function-local) so the wire codec can
// carry it across a network transport.
type splitEntry struct{ Color, Key, Rank int }

// Split partitions the communicator by color (as MPI_Comm_split): ranks
// sharing a color form a new communicator, ordered by (key, parent
// rank). Ranks passing a negative color (MPI_UNDEFINED) receive nil. The
// call is collective over the parent communicator.
func (c *Comm) Split(color, key int) *Comm {
	seq := c.nextSeq()
	gathered := c.treeGather(0, collTag(c.id, seq, 0), 12,
		splitEntry{Color: color, Key: key, Rank: c.self})

	// The root computes the group layout and broadcasts it.
	var layout map[int][]int
	if c.self == 0 {
		byColor := map[int][]splitEntry{}
		for _, g := range gathered {
			e := g.(splitEntry)
			if e.Color < 0 {
				continue
			}
			byColor[e.Color] = append(byColor[e.Color], e)
		}
		layout = make(map[int][]int, len(byColor))
		for col, es := range byColor {
			sort.Slice(es, func(i, j int) bool {
				if es[i].Key != es[j].Key {
					return es[i].Key < es[j].Key
				}
				return es[i].Rank < es[j].Rank
			})
			group := make([]int, len(es))
			for i, e := range es {
				group[i] = c.worldRank(e.Rank)
			}
			layout[col] = group
		}
	}
	layout = c.treeBcast(0, collTag(c.id, seq, 1), 16*len(c.group), layout).(map[int][]int)

	// One CommID per color, in sorted color order, so every member maps
	// its color to the same identity.
	var base CommID
	if c.self == 0 {
		base = c.p.rt.tr.allocComm(len(layout))
	}
	base = CommID(c.treeBcast(0, collTag(c.id, seq, 2), 8, uint64(base)).(uint64))
	if color < 0 {
		return nil
	}
	colors := make([]int, 0, len(layout))
	for col := range layout {
		colors = append(colors, col)
	}
	sort.Ints(colors)
	for i, col := range colors {
		if col != color {
			continue
		}
		group := layout[col]
		world := c.worldRank(c.self)
		for pos, r := range group {
			if r == world {
				return &Comm{p: c.p, id: base + CommID(i), group: group, self: pos}
			}
		}
	}
	return nil
}
