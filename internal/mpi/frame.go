package mpi

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"chameleon/internal/vtime"
)

// TCP frame layout. Every frame on a mesh connection is a uvarint
// length prefix followed by a body; the body's first byte selects the
// kind. Data frames carry one point-to-point message in binary varints
// (the hot path); control frames carry a small JSON document (hello,
// bound sweeps, leaving, abort — the cold paths).
//
//	frame    := uvarint(len(body)) body
//	body     := kindData  dest comm source tag bytes arrive origin seq sendVT payload
//	          | kindCtl   json
//
// All numeric header fields are unsigned varints: the runtime never
// sends negative ranks, tags, sizes, or virtual times (wildcards are
// receive-side patterns, not message attributes). sendVT/origin/seq are
// the piggybacked causal span context (PR-3) so cross-machine edges
// and wave detection keep working; a zero seq means causal capture was
// off at the sender.
const (
	kindData byte = 1
	kindCtl  byte = 2

	// maxFrameBody bounds a frame body so a corrupt or hostile length
	// prefix cannot drive an arbitrary allocation.
	maxFrameBody = 64 << 20
)

// appendDataFrame serializes (dest, msg) as a data-frame body onto dst
// (no length prefix — the writer adds it).
func appendDataFrame(dst []byte, dest int, msg message) ([]byte, error) {
	if dest < 0 || msg.source < 0 || msg.tag < 0 || msg.bytes < 0 ||
		msg.comm < 0 || msg.arrive < 0 || msg.origin < 0 || msg.sendVT < 0 {
		return nil, fmt.Errorf("mpi: unencodable message header (dest=%d src=%d tag=%d comm=%d)",
			dest, msg.source, msg.tag, msg.comm)
	}
	dst = append(dst, kindData)
	dst = binary.AppendUvarint(dst, uint64(dest))
	dst = binary.AppendUvarint(dst, uint64(msg.comm))
	dst = binary.AppendUvarint(dst, uint64(msg.source))
	dst = binary.AppendUvarint(dst, uint64(msg.tag))
	dst = binary.AppendUvarint(dst, uint64(msg.bytes))
	dst = binary.AppendUvarint(dst, uint64(msg.arrive))
	dst = binary.AppendUvarint(dst, uint64(msg.origin))
	dst = binary.AppendUvarint(dst, msg.seq)
	dst = binary.AppendUvarint(dst, uint64(msg.sendVT))
	return appendPayload(dst, msg.payload, 0)
}

// decodeDataFrame parses a data-frame body (including its kind byte)
// back into (dest, message). It never panics on malformed input: every
// varint and length is bounds-checked, and trailing garbage is an
// error (FuzzFrameDecode locks this in).
func decodeDataFrame(body []byte) (dest int, msg message, err error) {
	if len(body) == 0 || body[0] != kindData {
		return 0, message{}, fmt.Errorf("mpi: not a data frame")
	}
	b := body[1:]
	var fields [9]uint64
	for i := range fields {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, message{}, fmt.Errorf("mpi: truncated data frame header (field %d)", i)
		}
		fields[i] = v
		b = b[n:]
	}
	const maxRank = 1 << 24 // far above any plausible world size
	if fields[0] > maxRank || fields[2] > maxRank || fields[6] > maxRank {
		return 0, message{}, fmt.Errorf("mpi: data frame rank out of range")
	}
	if fields[1] > 1<<31 {
		return 0, message{}, fmt.Errorf("mpi: data frame comm out of range")
	}
	if fields[3] > 1<<62 || fields[4] > 1<<40 || fields[5] > 1<<62 || fields[8] > 1<<62 {
		return 0, message{}, fmt.Errorf("mpi: data frame field out of range")
	}
	payload, rest, err := decodePayload(b, 0)
	if err != nil {
		return 0, message{}, err
	}
	if len(rest) != 0 {
		return 0, message{}, fmt.Errorf("mpi: %d trailing bytes after data frame", len(rest))
	}
	return int(fields[0]), message{
		comm:    CommID(fields[1]),
		source:  int(fields[2]),
		tag:     int(fields[3]),
		bytes:   int(fields[4]),
		payload: payload,
		arrive:  vtime.Time(fields[5]),
		origin:  int(fields[6]),
		seq:     fields[7],
		sendVT:  vtime.Time(fields[8]),
	}, nil
}

// ctlMsg is the mesh control-frame document. One struct with optional
// fields keeps the control plane to a single decode path.
type ctlMsg struct {
	T string `json:"t"` // "hello", "breq", "bresp", "leaving", "abort"
	// hello
	Member int `json:"member,omitempty"`
	// breq/bresp
	Req      uint64   `json:"req,omitempty"`
	HasBound bool     `json:"hasBound,omitempty"`
	Bound    int64    `json:"bound,omitempty"`
	Gen      uint64   `json:"gen,omitempty"`
	Sent     []uint64 `json:"sent,omitempty"`
	Recvd    []uint64 `json:"recvd,omitempty"`
	// leaving (planned process exit: all local ranks crash-stopped)
	Ranks []int `json:"ranks,omitempty"`
}

// appendCtlFrame serializes a control body onto dst.
func appendCtlFrame(dst []byte, m *ctlMsg) ([]byte, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	dst = append(dst, kindCtl)
	return append(dst, data...), nil
}

// decodeCtlFrame parses a control-frame body (including its kind byte).
func decodeCtlFrame(body []byte) (*ctlMsg, error) {
	if len(body) == 0 || body[0] != kindCtl {
		return nil, fmt.Errorf("mpi: not a control frame")
	}
	var m ctlMsg
	if err := json.Unmarshal(body[1:], &m); err != nil {
		return nil, fmt.Errorf("mpi: bad control frame: %w", err)
	}
	if m.T == "" {
		return nil, fmt.Errorf("mpi: control frame without type")
	}
	return &m, nil
}

// decodeFrame dispatches a frame body to the data or control decoder;
// it is the single entry point the reader loop (and the fuzzer) uses.
func decodeFrame(body []byte) (dest int, msg message, ctl *ctlMsg, err error) {
	if len(body) == 0 {
		return 0, message{}, nil, fmt.Errorf("mpi: empty frame")
	}
	switch body[0] {
	case kindData:
		dest, msg, err = decodeDataFrame(body)
		return dest, msg, nil, err
	case kindCtl:
		ctl, err = decodeCtlFrame(body)
		return 0, message{}, ctl, err
	}
	return 0, message{}, nil, fmt.Errorf("mpi: unknown frame kind %d", body[0])
}

// writeFrame writes one length-prefixed frame body to w.
func writeFrame(w io.Writer, body []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(body)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame body from br, enforcing
// the body-size cap before allocating.
func readFrame(br *bufio.Reader) ([]byte, error) {
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if size == 0 || size > maxFrameBody {
		return nil, fmt.Errorf("mpi: frame body of %d bytes out of range", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}
