package mpi

import (
	"strings"

	"chameleon/internal/obs"
	"chameleon/internal/vtime"
)

// opMetrics holds the runtime's pre-fetched metric handles so the
// per-operation hot path never touches the registry map. The handles
// are shared across ranks (they are atomics); the struct is built once
// per Run.
type opMetrics struct {
	calls [numOpCodes]*obs.Counter
	bytes [numOpCodes]*obs.Counter
	// blocked time (call entry to completion) split by op class.
	p2pBlocked  *obs.Histogram
	collBlocked *obs.Histogram
	// application compute.
	computeCalls *obs.Counter
	computeNs    *obs.Histogram
	// marker barriers (Chameleon's reserved communicator).
	markerBarriers *obs.Counter
	// fault injection: perturbation draws that fired and crash-stops.
	faultDelays  *obs.Counter
	faultDelayNs *obs.Histogram
	crashes      *obs.Counter
}

// newOpMetrics registers the mpi_* metric series. It always returns a
// usable struct: with metrics disabled every handle is nil, and nil
// handles absorb updates, so call sites never guard on the struct.
func newOpMetrics(o *obs.Observer) *opMetrics {
	m := &opMetrics{
		p2pBlocked:     o.Histogram("mpi_p2p_blocked_vtime_ns"),
		collBlocked:    o.Histogram("mpi_collective_blocked_vtime_ns"),
		computeCalls:   o.Counter("mpi_compute_calls_total"),
		computeNs:      o.Histogram("mpi_compute_vtime_ns"),
		markerBarriers: o.Counter("mpi_marker_barrier_total"),
		faultDelays:    o.Counter("mpi_fault_delays_total"),
		faultDelayNs:   o.Histogram("mpi_fault_delay_vtime_ns"),
		crashes:        o.Counter("mpi_fault_crashes_total"),
	}
	for op := OpCode(1); op < numOpCodes; op++ {
		name := strings.ToLower(op.String())
		m.calls[op] = o.Counter("mpi_" + name + "_calls_total")
		m.bytes[op] = o.Counter("mpi_" + name + "_bytes_total")
	}
	return m
}

// opBegin runs the Pre interposer hook and snapshots the clock; paired
// with opEnd it brackets every public operation. For traced collectives
// it also installs an op-derived causal context (saving any outer one)
// so every hop edge of the collective carries an instance name even when
// no layer above named it explicitly.
func (p *Proc) opBegin(ci *CallInfo) vtime.Time {
	p.hooks.Pre(ci)
	if p.rt.causal != nil {
		p.opPrevName, p.opPrevSeq = p.ctxName, p.ctxSeq
		switch {
		case ci.Op == OpBarrier && ci.Comm == CommMarker:
			p.markerCt++
			p.ctxName, p.ctxSeq = "marker", p.markerCt
		case ci.Op.IsCollective():
			p.ctxName, p.ctxSeq = strings.ToLower(ci.Op.String()), p.collSeq[ci.Comm]
		}
	}
	return p.Clock.Now()
}

// opEnd records the operation into the observability layer (counts,
// bytes, blocked virtual time, a timeline span) and then runs the Post
// interposer hook. The span is taken before Post so tracing-layer work
// triggered by the hook (recording, marker processing) books onto its
// own spans rather than inflating the communication's.
func (p *Proc) opEnd(ci *CallInfo, start vtime.Time) {
	// Heartbeat for live telemetry: any completed operation proves the
	// rank is alive.
	p.rt.progress.Op(p.rank)
	if o := p.rt.obs; o != nil {
		end := p.Clock.Now()
		m := p.rt.met
		m.calls[ci.Op].Inc()
		if ci.Bytes > 0 {
			m.bytes[ci.Op].Add(uint64(ci.Bytes))
		}
		switch {
		case ci.Op == OpBarrier && ci.Comm == CommMarker:
			m.markerBarriers.Inc()
		case ci.Op.IsCollective():
			m.collBlocked.Observe(int64(end - start))
		case ci.Op.IsPointToPoint():
			m.p2pBlocked.Observe(int64(end - start))
		}
		name, cat := ci.Op.String(), obs.CatP2P
		switch {
		case ci.Op == OpBarrier && ci.Comm == CommMarker:
			name, cat = "marker", obs.CatMarker
		case ci.Op.IsCollective():
			cat = obs.CatColl
		}
		o.Span(p.rank, name, cat, start, end)
	}
	if p.rt.causal != nil {
		// Restore the outer context before Post so tracing-layer work the
		// hook triggers (marker processing, clustering) starts clean.
		p.ctxName, p.ctxSeq = p.opPrevName, p.opPrevSeq
	}
	p.hooks.Post(ci)
}

// overheadSpan maps a ledger category to its timeline (name, cat) pair.
func overheadSpan(c vtime.Category) (string, string) {
	switch c {
	case vtime.CatMarker:
		return "vote", obs.CatMarker
	case vtime.CatCluster:
		return "cluster", obs.CatClustering
	default:
		return c.String(), obs.CatTracer
	}
}
