package mpi

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"chameleon/internal/vtime"
)

// poisonFrames is the hand-built corpus of hostile frame bodies: every
// class of malformation the decoder must reject without panicking or
// over-allocating.
func poisonFrames() [][]byte {
	okData, _ := appendDataFrame(nil, 3, message{
		comm: CommWorld, source: 1, tag: 7, bytes: 64,
		payload: "x", arrive: 100, origin: 1, seq: 2, sendVT: 90,
	})
	okCtl, _ := appendCtlFrame(nil, &ctlMsg{T: "breq", Req: 5})
	uv := func(vals ...uint64) []byte {
		var b []byte
		for _, v := range vals {
			b = binary.AppendUvarint(b, v)
		}
		return b
	}
	frames := [][]byte{
		{},                             // empty body
		{0x00},                         // unknown kind
		{0xff},                         // unknown kind, high bit
		{kindData},                     // data frame with no header
		{kindCtl},                      // control frame with no JSON
		{kindCtl, '{'},                 // truncated JSON
		{kindCtl, 'n', 'u', 'l', 'l'},  // JSON, wrong shape
		append([]byte{kindData}, 0x80), // truncated varint (continuation bit, no byte)
		okData[:len(okData)-1],         // truncated payload
		append(append([]byte{}, okData...), 0x01), // trailing garbage
		okData[:1+1], // header cut after first field
		append([]byte{kindData}, uv(1<<25, 0, 0, 0, 0, 0, 0, 0, 0, 0)...),                                              // dest over rank cap
		append([]byte{kindData}, uv(0, 1<<32, 0, 0, 0, 0, 0, 0, 0, 0)...),                                              // comm over cap
		append([]byte{kindData}, uv(0, 0, 1<<25, 0, 0, 0, 0, 0, 0, 0)...),                                              // source over rank cap
		append([]byte{kindData}, uv(0, 0, 0, 1<<63, 0, 0, 0, 0, 0, 0)...),                                              // tag over cap
		append([]byte{kindData}, uv(0, 0, 0, 0, 1<<41, 0, 0, 0, 0, 0)...),                                              // bytes over cap
		append([]byte{kindData}, append(uv(0, 0, 0, 0, 0, 0, 0, 0, 0), 9)...),                                          // unknown payload kind
		append([]byte{kindData}, append(uv(0, 0, 0, 0, 0, 0, 0, 0, 0), payloadU64)...),                                 // u64 payload, no value
		append([]byte{kindData}, append(uv(0, 0, 0, 0, 0, 0, 0, 0, 0), payloadPairs, 0xff, 0xff, 0xff, 0xff, 0x7f)...), // absurd pair count
		append([]byte{kindData}, append(uv(0, 0, 0, 0, 0, 0, 0, 0, 0), payloadList, 0xff, 0xff, 0xff, 0xff, 0x7f)...),  // absurd list count
		append([]byte{kindData}, append(uv(0, 0, 0, 0, 0, 0, 0, 0, 0), payloadCodec, 0)...),                            // empty codec name
		append([]byte{kindData}, append(append(uv(0, 0, 0, 0, 0, 0, 0, 0, 0), payloadCodec, 4), []byte("nope")...)...), // codec name, no data length
	}
	// Deeply nested pairs: exceeds maxPairsDepth.
	deep := uv(0, 0, 0, 0, 0, 0, 0, 0, 0)
	for i := 0; i < maxPairsDepth+2; i++ {
		deep = append(deep, payloadPairs, 1, 0) // one pair, rank 0, nested...
	}
	frames = append(frames, append([]byte{kindData}, deep...))
	// Unknown codec name with plausible structure.
	unk := append(uv(0, 0, 0, 0, 0, 0, 0, 0, 0), payloadCodec, 7)
	unk = append(unk, []byte("badname")...)
	unk = append(unk, 2, 'h', 'i')
	frames = append(frames, append([]byte{kindData}, unk...))
	// Valid frames belong in the corpus too: the fuzzer mutates from
	// them into near-valid shapes.
	frames = append(frames, okData, okCtl)
	return frames
}

// FuzzFrameDecode asserts the frame decoder never panics and never
// round-trip-corrupts: any body it accepts must re-encode to an
// equivalent decode.
func FuzzFrameDecode(f *testing.F) {
	for _, body := range poisonFrames() {
		f.Add(body)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		dest, msg, ctl, err := decodeFrame(body)
		if err != nil {
			return
		}
		if ctl != nil {
			return // control frames are plain JSON; nothing further to check
		}
		// Accepted data frame: re-encoding must succeed and decode back
		// to the same message.
		re, err := appendDataFrame(nil, dest, msg)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		dest2, msg2, err := decodeDataFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if dest2 != dest || msg2.comm != msg.comm || msg2.source != msg.source ||
			msg2.tag != msg.tag || msg2.bytes != msg.bytes || msg2.arrive != msg.arrive ||
			msg2.origin != msg.origin || msg2.seq != msg.seq || msg2.sendVT != msg.sendVT {
			t.Fatalf("re-encode drift: %+v vs %+v", msg2, msg)
		}
	})
}

// TestPoisonFramesRejected runs the poison corpus through the decoder
// directly (the fuzz seeds double as a deterministic regression test)
// and through the length-prefixed reader.
func TestPoisonFramesRejected(t *testing.T) {
	valid := 0
	for i, body := range poisonFrames() {
		_, _, _, err := decodeFrame(body)
		if err == nil {
			valid++
			continue
		}
		_ = i // corpus entries that error are the point; must not panic
	}
	if valid != 2 {
		t.Fatalf("%d poison frames decoded cleanly, want exactly the 2 valid seeds", valid)
	}

	// Oversized length prefix must be rejected before allocation.
	var buf bytes.Buffer
	hdr := binary.AppendUvarint(nil, maxFrameBody+1)
	buf.Write(hdr)
	if _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	// Zero-length frames are invalid on the wire.
	buf.Reset()
	buf.Write(binary.AppendUvarint(nil, 0))
	if _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// A well-formed write must read back intact.
	buf.Reset()
	body, _ := appendDataFrame(nil, 1, message{comm: CommWorld, source: 0, tag: 1, arrive: 5, sendVT: vtime.Time(4)})
	if err := writeFrame(&buf, body); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(bufio.NewReader(&buf))
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("frame write/read mismatch: %v", err)
	}
}
