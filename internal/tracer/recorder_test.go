package tracer

import (
	"testing"

	"chameleon/internal/mpi"
	"chameleon/internal/sig"
	"chameleon/internal/trace"
	"chameleon/internal/vtime"
)

// withProc runs f on rank `rank` of a p-rank job and returns when the
// job completes.
func withProc(t *testing.T, p, rank int, f func(proc *mpi.Proc)) {
	t.Helper()
	_, err := mpi.Run(mpi.Config{P: p}, func(proc *mpi.Proc) {
		if proc.Rank() == rank {
			f(proc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRelativeNormalization(t *testing.T) {
	withProc(t, 8, 2, func(proc *mpi.Proc) {
		r := NewRecorder(proc, SigFull, false)
		// Plain neighbor.
		ev := r.Encode(&mpi.CallInfo{Op: mpi.OpSend, Dest: 3, Src: mpi.NoPeer, Root: mpi.NoPeer}, 1)
		if ev.Dest.Kind != trace.EPRelative || ev.Dest.Off != 1 {
			t.Errorf("dest = %v", ev.Dest)
		}
		// Torus wrap: rank 2 sending to rank 7 is offset -3 mod 8.
		ev = r.Encode(&mpi.CallInfo{Op: mpi.OpSend, Dest: 7, Src: mpi.NoPeer, Root: mpi.NoPeer}, 1)
		if ev.Dest.Off != -3 {
			t.Errorf("wrap offset = %v", ev.Dest)
		}
		// Receive sources encode the same way.
		ev = r.Encode(&mpi.CallInfo{Op: mpi.OpRecv, Dest: mpi.NoPeer, Src: 1, Root: mpi.NoPeer}, 1)
		if ev.Src.Kind != trace.EPRelative || ev.Src.Off != -1 {
			t.Errorf("src = %v", ev.Src)
		}
	})
}

func TestEncodeWildcardAndReply(t *testing.T) {
	withProc(t, 4, 0, func(proc *mpi.Proc) {
		r := NewRecorder(proc, SigFull, false)
		// Wildcard receive.
		ci := &mpi.CallInfo{Op: mpi.OpRecv, Dest: mpi.NoPeer, Src: mpi.AnySource, Root: mpi.NoPeer, MatchedSrc: 2}
		ev := r.Encode(ci, 1)
		if ev.Src.Kind != trace.EPAnySource {
			t.Errorf("wildcard src = %v", ev.Src)
		}
		r.Record(ci, 0, 0)
		// The reply to the matched source uses the ReplyToLast encoding.
		ev = r.Encode(&mpi.CallInfo{Op: mpi.OpSend, Dest: 2, Src: mpi.NoPeer, Root: mpi.NoPeer}, 1)
		if ev.Dest.Kind != trace.EPReplyToLast {
			t.Errorf("reply dest = %v", ev.Dest)
		}
		// A send elsewhere stays relative.
		ev = r.Encode(&mpi.CallInfo{Op: mpi.OpSend, Dest: 1, Src: mpi.NoPeer, Root: mpi.NoPeer}, 1)
		if ev.Dest.Kind != trace.EPRelative {
			t.Errorf("other dest = %v", ev.Dest)
		}
	})
}

func TestEncodeCollectiveRoot(t *testing.T) {
	withProc(t, 4, 1, func(proc *mpi.Proc) {
		r := NewRecorder(proc, SigFull, false)
		ev := r.Encode(&mpi.CallInfo{Op: mpi.OpBcast, Dest: mpi.NoPeer, Src: mpi.NoPeer, Root: 2}, 1)
		if ev.Dest.Kind != trace.EPAbsolute || ev.Dest.Off != 2 {
			t.Errorf("root = %v", ev.Dest)
		}
		ev = r.Encode(&mpi.CallInfo{Op: mpi.OpBarrier, Dest: mpi.NoPeer, Src: mpi.NoPeer, Root: mpi.NoPeer}, 1)
		if ev.Dest.Kind != trace.EPNone {
			t.Errorf("barrier dest = %v", ev.Dest)
		}
	})
}

func TestRecorderDisabledKeepsSignatures(t *testing.T) {
	withProc(t, 2, 0, func(proc *mpi.Proc) {
		r := NewRecorder(proc, SigFull, false)
		r.Enabled = false
		ci := &mpi.CallInfo{Op: mpi.OpSend, Dest: 1, Src: mpi.NoPeer, Root: mpi.NoPeer, Comm: mpi.CommWorld}
		r.Record(ci, 0, 0)
		if r.Events != 0 || len(r.Comp.Seq) != 0 || r.AllocBytes != 0 {
			t.Errorf("disabled recorder built trace state")
		}
		if r.Observed != 1 || r.Win.Events() != 1 {
			t.Errorf("disabled recorder lost signature state: obs=%d win=%d", r.Observed, r.Win.Events())
		}
	})
}

func TestRecorderDeltaTimes(t *testing.T) {
	withProc(t, 2, 0, func(proc *mpi.Proc) {
		r := NewRecorder(proc, SigFull, false)
		ci := &mpi.CallInfo{Op: mpi.OpSend, Dest: 1, Src: mpi.NoPeer, Root: mpi.NoPeer, Comm: mpi.CommWorld}
		r.Record(ci, proc.Clock.Now(), 0)
		proc.Compute(3 * vtime.Millisecond)
		r.Record(ci, proc.Clock.Now(), 0)
		// Folded into one leaf (same call site in the Record loop), the
		// second occurrence carries the 3ms delta.
		if len(r.Comp.Seq) == 0 {
			t.Fatalf("nothing recorded")
		}
		var maxDelta int64
		for _, n := range r.Comp.Seq {
			if !n.IsLoop() && n.Delta != nil && n.Delta.Max > maxDelta {
				maxDelta = n.Delta.Max
			}
			if n.IsLoop() {
				for _, b := range n.Body {
					if b.Delta != nil && b.Delta.Max > maxDelta {
						maxDelta = b.Delta.Max
					}
				}
			}
		}
		if maxDelta < int64(3*vtime.Millisecond) {
			t.Errorf("delta not captured: %d", maxDelta)
		}
	})
}

func TestWindowFullVsFiltered(t *testing.T) {
	mkEv := func(site int) trace.Event {
		return trace.Event{Op: mpi.OpSend, Stack: sig.Stack(sig.Mix(uint64(site)))}
	}
	// Same call-site sets, different occurrence counts.
	fullA, fullB := NewWindow(SigFull), NewWindow(SigFull)
	filtA, filtB := NewWindow(SigFiltered), NewWindow(SigFiltered)
	for i := 0; i < 5; i++ {
		fullA.Add(mkEv(1))
		filtA.Add(mkEv(1))
	}
	for i := 0; i < 7; i++ {
		fullB.Add(mkEv(1))
		filtB.Add(mkEv(1))
	}
	if fullA.Triple().CallPath == fullB.Triple().CallPath {
		t.Fatalf("full mode ignored occurrence counts")
	}
	if filtA.Triple().CallPath != filtB.Triple().CallPath {
		t.Fatalf("filtered mode sensitive to counts")
	}
}

func TestWindowDistinguishesCallSites(t *testing.T) {
	mkEv := func(site int) trace.Event {
		return trace.Event{Op: mpi.OpSend, Stack: sig.Stack(sig.Mix(uint64(site)))}
	}
	a, b := NewWindow(SigFull), NewWindow(SigFull)
	a.Add(mkEv(1))
	a.Add(mkEv(2))
	b.Add(mkEv(1))
	b.Add(mkEv(3))
	if a.Triple().CallPath == b.Triple().CallPath {
		t.Fatalf("different call-site sets share a Call-Path")
	}
	if a.DistinctSites() != 2 {
		t.Fatalf("distinct sites = %d", a.DistinctSites())
	}
}

func TestWindowOrderSensitivity(t *testing.T) {
	mkEv := func(site int) trace.Event {
		return trace.Event{Op: mpi.OpSend, Stack: sig.Stack(sig.Mix(uint64(site)))}
	}
	a, b := NewWindow(SigFull), NewWindow(SigFull)
	a.Add(mkEv(1))
	a.Add(mkEv(2))
	b.Add(mkEv(2))
	b.Add(mkEv(1))
	if a.Triple().CallPath == b.Triple().CallPath {
		t.Fatalf("permuted first-seen order produced equal Call-Paths")
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(SigFull)
	w.Add(trace.Event{Op: mpi.OpSend, Stack: 1, Dest: trace.Relative(1)})
	w.Reset()
	if w.Events() != 0 || w.Triple().CallPath != 0 || w.Triple().Src != 0 {
		t.Fatalf("reset incomplete")
	}
}

func TestWindowRepetitiveStability(t *testing.T) {
	// Two windows observing the same repetitive pattern must produce the
	// identical triple — the property Algorithm 1's vote depends on.
	build := func() sig.Triple {
		w := NewWindow(SigFull)
		for i := 0; i < 25; i++ {
			w.Add(trace.Event{Op: mpi.OpSend, Stack: sig.Stack(sig.Mix(1)), Dest: trace.Relative(1)})
			w.Add(trace.Event{Op: mpi.OpRecv, Stack: sig.Stack(sig.Mix(2)), Src: trace.Relative(-1)})
		}
		return w.Triple()
	}
	if build() != build() {
		t.Fatalf("repetitive windows differ")
	}
}

func TestMergeOverTree(t *testing.T) {
	const P = 9
	var got []*trace.Node
	_, err := mpi.Run(mpi.Config{P: P}, func(p *mpi.Proc) {
		r := NewRecorder(p, SigFull, false)
		// Every rank records the same two events plus one rank-specific
		// branch on rank 3.
		ci := &mpi.CallInfo{Op: mpi.OpSend, Comm: mpi.CommWorld, Dest: (p.Rank() + 1) % P, Src: mpi.NoPeer, Root: mpi.NoPeer, Tag: 1}
		r.Record(ci, 0, 0)
		if p.Rank() == 3 {
			ci2 := &mpi.CallInfo{Op: mpi.OpBarrier, Comm: mpi.CommWorld, Dest: mpi.NoPeer, Src: mpi.NoPeer, Root: mpi.NoPeer, Tag: 2}
			r.Record(ci2, 0, 0)
		}
		members := make([]int, P)
		for i := range members {
			members[i] = i
		}
		merged := MergeOverTree(p, members, r.TakePartial(), false, MergeTag(7), vtime.CatInterComp)
		if p.Rank() == 0 {
			got = merged
		} else if merged != nil {
			t.Errorf("rank %d received merged trace", p.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("root received nothing")
	}
	// The shared send merges into one leaf covering all ranks; rank 3's
	// barrier stays separate.
	var send, barrier *trace.Node
	for _, n := range got {
		switch n.Ev.Op {
		case mpi.OpSend:
			send = n
		case mpi.OpBarrier:
			barrier = n
		}
	}
	if send == nil || send.Ranks.Size() != P {
		t.Fatalf("send coverage: %+v", send)
	}
	if barrier == nil || barrier.Ranks.Size() != 1 || !barrier.Ranks.Contains(3) {
		t.Fatalf("barrier coverage: %+v", barrier)
	}
}

func TestMergeOverTreeNonMember(t *testing.T) {
	_, err := mpi.Run(mpi.Config{P: 4}, func(p *mpi.Proc) {
		members := []int{0, 2} // ranks 1 and 3 sit out
		r := NewRecorder(p, SigFull, false)
		ci := &mpi.CallInfo{Op: mpi.OpBarrier, Comm: mpi.CommWorld, Dest: mpi.NoPeer, Src: mpi.NoPeer, Root: mpi.NoPeer}
		r.Record(ci, 0, 0)
		mine := r.TakePartial()
		out := MergeOverTree(p, members, mine, false, MergeTag(9), vtime.CatInterComp)
		switch p.Rank() {
		case 0:
			if out == nil || trace.LeafCount(out) != 1 {
				t.Errorf("root merge wrong")
			}
		case 2:
			if out != nil {
				t.Errorf("non-root member got result")
			}
		default:
			// Non-members get their own trace back unchanged.
			if len(out) != 1 {
				t.Errorf("non-member trace altered")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
