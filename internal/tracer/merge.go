package tracer

import (
	"chameleon/internal/mpi"
	"chameleon/internal/obs"
	"chameleon/internal/trace"
	"chameleon/internal/vtime"
)

// mergeTagBase keeps radix-tree merge traffic clear of the collective
// tag namespace on the internal communicator.
const mergeTagBase = 1 << 55

// MergeTag derives the internal tag for merge round `round`.
func MergeTag(round int) int { return mergeTagBase | round<<3 }

// MergeOverTree runs one inter-node compression step: every member rank
// contributes its node sequence, traces are merged pairwise up a
// binomial (radix) tree, and members[0] returns the merged sequence
// (nil on other ranks; non-members return mine unchanged).
//
// members must be in identical order on every participating rank, and
// every member must call MergeOverTree with the same tag. Transfer costs
// are charged by the runtime (message sizes equal the serialized trace
// footprint); merge work is charged per structural comparison and per
// byte to the given ledger category — together these realize the
// paper's O(n² log |members|) inter-compression cost.
func MergeOverTree(p *mpi.Proc, members []int, mine []*trace.Node, filter bool, tag int, cat vtime.Category) []*trace.Node {
	pos := mpi.TreePos(members, p.Rank())
	if pos < 0 {
		return mine
	}
	// Default causal label (tag distinguishes rounds); core's explicit
	// "merge:<cause>" context, when set, takes precedence.
	defer p.CausalContextDefault("merge", tag)()
	model := p.Model()
	world := p.World()
	// Handles are nil-safe when metrics are off; no guard needed.
	o := p.Obs()
	mSteps := o.Counter("tracer_merge_steps_total")
	mCompares := o.Counter("tracer_merge_compares_total")
	mBytes := o.Counter("tracer_merge_bytes_total")
	o.Gauge("tracer_merge_tree_depth").SetMax(int64(vtime.Log2Ceil(len(members))))
	acc := mine
	for _, childPos := range mpi.TreeChildPositions(pos, len(members)) {
		t0 := p.Clock.Now()
		msg := world.RawRecv(members[childPos], tag)
		// Book the transfer/wait time the recv put on the clock.
		p.Ledger.Charge(cat, vtime.Duration(p.Clock.Now()-t0))
		o.Span(p.Rank(), "merge-wait", obs.CatTracer, t0, p.Clock.Now())
		child, _ := msg.Payload.([]*trace.Node)
		// Ownership is linear along the tree: the child rank sent its
		// sequence away and this rank's acc is not referenced elsewhere,
		// so the merger consumes both in place instead of deep-copying.
		m := trace.Merger{Filter: filter, P: p.Size(), Owned: true}
		acc = m.Merge(acc, child)
		p.ChargeOverhead(cat,
			model.MergeFixed+
				vtime.Duration(m.Stats.Compares)*model.ComparePerOp+
				vtime.Duration(m.Stats.BytesMerged)*model.MergePerByte)
		mSteps.Inc()
		mCompares.Add(uint64(m.Stats.Compares))
		mBytes.Add(uint64(m.Stats.BytesMerged))
		o.Emit(obs.Event{
			Kind: obs.KindMerge, Rank: p.Rank(), VT: int64(p.Clock.Now()),
			Count: uint64(m.Stats.Compares), Bytes: int64(m.Stats.BytesMerged),
		})
	}
	if parent := mpi.TreeParentPos(pos); parent >= 0 {
		t0 := p.Clock.Now()
		world.RawSend(members[parent], tag, trace.SizeBytes(acc), acc)
		p.Ledger.Charge(cat, vtime.Duration(p.Clock.Now()-t0))
		return nil
	}
	return acc
}
