// Package tracer provides the per-rank recording engine shared by every
// tracing tool in this repository (ScalaTrace, Chameleon, ACURDION): it
// sits inside the PMPI-style interposition hooks, encodes each MPI call
// into a trace event (stack signature, relative end-points, delta time),
// feeds the intra-node loop compressor, and maintains the per-window
// signature accumulators clustering consumes.
package tracer

import (
	"chameleon/internal/mpi"
	"chameleon/internal/obs"
	"chameleon/internal/ranklist"
	"chameleon/internal/sig"
	"chameleon/internal/trace"
	"chameleon/internal/vtime"
)

// SigMode selects how window Call-Path signatures are built.
type SigMode int

// Signature modes.
const (
	// SigFull folds every dynamic event occurrence with the (seq%10)+1
	// ordering multiplier — the paper's default construction.
	SigFull SigMode = iota
	// SigFiltered folds each distinct stack signature once, ignoring
	// occurrence counts — ScalaTrace's automatic parameter filter, which
	// makes irregular codes (POP's data-dependent solver iterations,
	// master/worker task counts) cluster as regular.
	SigFiltered
)

// Window accumulates the signature state of the events recorded between
// two marker calls. Mirroring the paper's O(n) signature creation over
// the PRSD-compressed notation, the Call-Path folds one term per
// *distinct call site* (with its occurrence count), not one term per
// dynamic event — a per-event XOR would self-cancel over long repetitive
// windows because every signature recurs under every (seq%10)+1
// multiplier an even number of times.
//
// Sites are tracked by their interned SiteID: the occurrence counters
// live in a dense slice indexed by site, so the steady state of a
// repetitive window (every site already seen) allocates nothing and
// never touches a hash map.
type Window struct {
	mode   SigMode
	order  []sig.SiteID // distinct sites in first-seen order
	counts []uint64     // occurrences, parallel to order
	pos    []int32      // SiteID → 1-based index into order; 0 = unseen
	src    sig.Endpoint
	dest   sig.Endpoint
	events uint64
}

// NewWindow returns an empty accumulator in the given mode.
func NewWindow(mode SigMode) *Window {
	return &Window{mode: mode}
}

// Add folds one event into the window. Events without an interned site
// (hand-built tests, v1 traces) are interned by signature on the fly, so
// identical signatures still collapse onto one accumulator slot.
func (w *Window) Add(ev trace.Event) {
	w.events++
	site := ev.Site
	if site == sig.NoSite {
		site = sig.Sites.InternSig(ev.Stack)
	}
	if int(site) >= len(w.pos) {
		grown := make([]int32, int(site)+16)
		copy(grown, w.pos)
		w.pos = grown
	}
	p := w.pos[site]
	if p == 0 {
		w.order = append(w.order, site)
		w.counts = append(w.counts, 0)
		p = int32(len(w.order))
		w.pos[site] = p
	}
	w.counts[p-1]++
	if v, ok := ev.Src.SigValue(); ok {
		w.src.Add(v)
	}
	if v, ok := ev.Dest.SigValue(); ok {
		w.dest.Add(v)
	}
}

// Triple snapshots the window's signature triple: each distinct call
// site contributes once, scaled by the paper's (position%10)+1 ordering
// multiplier so permuted call sequences cannot cancel. SigFull folds the
// occurrence count into the term (repetition-count sensitive); the
// filtered mode drops it, so loops with data-dependent trip counts (POP)
// still produce a stable signature. Signatures come from the intern
// table's cache — the per-frame fold happened once, at intern time.
func (w *Window) Triple() sig.Triple {
	var cp uint64
	for i, site := range w.order {
		term := uint64(sig.Sites.Signature(site))
		if w.mode == SigFull {
			term ^= sig.Mix(w.counts[i])
		}
		mult := uint64(i%10) + 1
		cp ^= term * mult
	}
	return sig.Triple{CallPath: cp, Src: w.src.Value(), Dest: w.dest.Value()}
}

// Events returns the number of events folded into the window.
func (w *Window) Events() uint64 { return w.events }

// DistinctSites returns the number of distinct call sites in the window
// (the paper's n for signature-creation cost).
func (w *Window) DistinctSites() int { return len(w.order) }

// Reset clears the accumulators for the next window, keeping the backing
// storage so steady-state windows allocate nothing.
func (w *Window) Reset() {
	for _, site := range w.order {
		w.pos[site] = 0
	}
	w.order = w.order[:0]
	w.counts = w.counts[:0]
	w.src.Reset()
	w.dest.Reset()
	w.events = 0
}

// Recorder is the per-rank recording engine.
type Recorder struct {
	Proc *mpi.Proc
	// Comp is the rank's intra-node compressor (the partial trace).
	Comp trace.Compressor
	// Enabled gates trace-node construction; signature accumulation
	// stays on so disabled (non-lead) ranks can still vote on phase
	// changes. This is Chameleon's "lead flag".
	Enabled bool
	// Win holds the current marker window's signatures.
	Win *Window

	// lastEventEnd is the clock after the previous recorded event; the
	// difference to the next event's pre-call clock is its delta time.
	lastEventEnd vtime.Time
	// excluded accumulates tool-inserted spans (marker barriers, votes,
	// clustering) between events, subtracted from the next delta so
	// replay reproduces the unmarked application's computation times.
	excluded vtime.Duration
	// lastAnySrc remembers the matched source of the most recent
	// wildcard receive for ReplyToLast destination encoding.
	lastAnySrc int

	// lastStack is the stack signature of the most recently observed
	// event (consumed by automatic marker detection).
	lastStack sig.Stack

	// pool recycles the trace nodes this rank's compressor discards;
	// selfRanks is the rank's singleton rank list, shared by every leaf
	// (rank lists are immutable once built).
	pool      trace.Pool
	selfRanks ranklist.List

	// AllocBytes tracks cumulative trace bytes allocated by this rank
	// (monotone; deletion does not decrease it), for the space ledger.
	AllocBytes int
	// Events counts dynamic events recorded (not just observed).
	Events uint64
	// Observed counts dynamic events observed (recorded or not).
	Observed uint64

	// obsObserved/obsRecorded/obsAlloc are the pre-fetched metric
	// handles (nil, and no-ops, when observability is off).
	obsObserved *obs.Counter
	obsRecorded *obs.Counter
	obsAlloc    *obs.Counter
}

// NewRecorder builds a recorder for the rank with the given signature
// mode and the parameter filter setting.
func NewRecorder(p *mpi.Proc, mode SigMode, filter bool) *Recorder {
	r := &Recorder{
		Proc:       p,
		Enabled:    true,
		Win:        NewWindow(mode),
		lastAnySrc: -1,
		selfRanks:  ranklist.SingleRank(p.Rank()),
	}
	if o := p.Obs(); o != nil {
		r.obsObserved = o.Counter("tracer_events_observed_total")
		r.obsRecorded = o.Counter("tracer_events_recorded_total")
		r.obsAlloc = o.Counter("tracer_alloc_bytes_total")
	}
	r.Comp.Filter = filter
	r.Comp.Pool = &r.pool
	return r
}

// Encode translates an intercepted call into a trace event. It is
// exported so tests can exercise encoding rules directly.
func (r *Recorder) Encode(ci *mpi.CallInfo, stack sig.Stack) trace.Event {
	self := r.Proc.Rank()
	ev := trace.Event{
		Op:    ci.Op,
		Stack: stack,
		Comm:  ci.Comm,
		Tag:   ci.Tag,
		Bytes: ci.Bytes,
		Dest:  trace.NoEndpoint,
		Src:   trace.NoEndpoint,
	}
	switch {
	case ci.Op.IsPointToPoint():
		if ci.Dest != mpi.NoPeer {
			if r.lastAnySrc >= 0 && ci.Dest == r.lastAnySrc {
				ev.Dest = trace.Endpoint{Kind: trace.EPReplyToLast}
			} else {
				ev.Dest = trace.Relative(normalizeOffset(ci.Dest-self, r.Proc.Size()))
			}
		}
		if ci.Src != mpi.NoPeer {
			if ci.Src == mpi.AnySource {
				ev.Src = trace.Endpoint{Kind: trace.EPAnySource}
			} else {
				ev.Src = trace.Relative(normalizeOffset(ci.Src-self, r.Proc.Size()))
			}
		}
	case ci.Op.IsCollective():
		if ci.Root != mpi.NoPeer {
			ev.Dest = trace.Absolute(ci.Root)
		}
	}
	return ev
}

// normalizeOffset reduces a relative end-point offset modulo the rank
// count into the signed range (-p/2, p/2]. Torus codes address wrapped
// neighbors as rank±c mod P, so normalizing makes the wrap ranks'
// encodings identical to the interior's — the location independence
// ScalaTrace's relative encodings exist to provide.
func normalizeOffset(off, p int) int {
	off = ((off % p) + p) % p
	if off > p/2 {
		off -= p
	}
	return off
}

// Record processes one completed call: encodes it, folds it into the
// window signatures, and (when enabled) appends it to the partial trace.
// preClock is the rank's clock when the call began; stackSkip tells the
// signature capture how many frames to drop above Record.
func (r *Recorder) Record(ci *mpi.CallInfo, preClock vtime.Time, stackSkip int) {
	model := r.Proc.Model()
	// Intern the call site: the backtrace walk and per-frame signature
	// fold run once per distinct site; loop iterations pay one hash and
	// a shard-map hit. CaptureSite's skip arithmetic matches Capture's,
	// so the observed frames are the ones Capture used to fold.
	site := sig.CaptureSite(stackSkip + 1)
	ev := r.Encode(ci, sig.Sites.Signature(site))
	ev.Site = site
	r.Observed++
	r.obsObserved.Inc()

	// Track wildcard matches for ReplyToLast encoding. The update
	// happens after Encode so a send following the wildcard recv sees
	// the recv's source.
	if (ci.Op == mpi.OpRecv || ci.Op == mpi.OpWait || ci.Op == mpi.OpSendrecv) &&
		ci.Src == mpi.AnySource {
		r.lastAnySrc = ci.MatchedSrc
	}

	r.lastStack = ev.Stack
	// Window signatures are always maintained (voting needs them even on
	// non-lead ranks); charge the hashing cost to the intra category.
	r.Win.Add(ev)
	r.Proc.ChargeOverhead(vtime.CatIntra, model.SigPerEvent)

	if !r.Enabled {
		return
	}
	delta := int64(preClock-r.lastEventEnd) - int64(r.excluded)
	if delta < 0 {
		delta = 0
	}
	r.excluded = 0
	before := r.Comp.SizeBytes()
	leaf := r.pool.Leaf(ev, r.selfRanks, delta)
	r.Comp.AppendLeaf(leaf)
	r.Events++
	r.obsRecorded.Inc()
	if after := r.Comp.SizeBytes(); after > before {
		r.AllocBytes += after - before
		r.obsAlloc.Add(uint64(after - before))
	}
	r.Proc.ChargeOverhead(vtime.CatIntra, model.CompressPerEvent)
	r.lastEventEnd = r.Proc.Clock.Now()
}

// LastStack returns the stack signature of the most recently observed
// event (0 before the first event).
func (r *Recorder) LastStack() uint64 { return uint64(r.lastStack) }

// MarkEventBoundary resets the delta-time origin (used after flushes:
// "processes only need to keep the stack signature of the last event so
// that ScalaTrace considers the computation time between the last event
// and the new event").
func (r *Recorder) MarkEventBoundary() {
	r.lastEventEnd = r.Proc.Clock.Now()
	r.excluded = 0
}

// ExcludeSpan subtracts a tool-inserted span (marker processing) from
// the next recorded event's delta, preserving the application
// computation that preceded the marker.
func (r *Recorder) ExcludeSpan(d vtime.Duration) {
	if d > 0 {
		r.excluded += d
	}
}

// TakePartial detaches and returns the current partial trace ("delete
// your partial trace" at the end of a flush). Ownership of the nodes
// moves to the caller.
func (r *Recorder) TakePartial() []*trace.Node {
	return r.Comp.Reset()
}

// DiscardPartial deletes the current partial trace, recycling its nodes
// into the recorder's pool — the path for ranks whose partial is flushed
// nowhere (non-leads at a lead flush, departed ranks).
func (r *Recorder) DiscardPartial() {
	r.pool.PutSeq(r.Comp.Reset())
}

// PartialSize returns the current partial trace footprint in bytes.
func (r *Recorder) PartialSize() int { return r.Comp.SizeBytes() }
