package fault

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"chameleon/internal/vtime"
)

func TestPulseOneShot(t *testing.T) {
	plan, err := Parse("pulse rank=3 at=1ms extra=5ms")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(plan, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := vtime.Millisecond
	// Before the anchor: untouched.
	if got := in.PerturbCompute(3, 0, base); got != base {
		t.Errorf("pre-anchor perturbation = %v, want %v", got, base)
	}
	// Past the anchor: fires once.
	if got := in.PerturbCompute(3, 2*vtime.Time(vtime.Millisecond), base); got != base+5*vtime.Millisecond {
		t.Errorf("post-anchor perturbation = %v, want %v", got, base+5*vtime.Millisecond)
	}
	// One-shot: never again.
	if got := in.PerturbCompute(3, 100*vtime.Time(vtime.Millisecond), base); got != base {
		t.Errorf("second firing = %v, want %v (one-shot)", got, base)
	}
	if got := in.PulsesFired(3); got != 1 {
		t.Errorf("PulsesFired(3) = %d, want 1", got)
	}
	// Other ranks untouched.
	if got := in.PerturbCompute(4, 100*vtime.Time(vtime.Millisecond), base); got != base {
		t.Errorf("rank 4 perturbation = %v, want %v", got, base)
	}
}

func TestPulsePeriodicAbsorption(t *testing.T) {
	plan, err := Parse("pulse rank=0 at=0ms extra=1ms every=1ms count=5")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(plan, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A rank that only shows up at t=10ms was blocked through 5 due
	// pulses: exactly one fires, the rest are absorbed — the decay
	// mechanism of idle waves (noise landing on an already-waiting
	// rank does no additional harm).
	got := in.PerturbCompute(0, 10*vtime.Time(vtime.Millisecond), vtime.Millisecond)
	if want := 2 * vtime.Millisecond; got != want {
		t.Errorf("perturbation = %v, want %v (single firing despite 5 due)", got, want)
	}
	if f := in.PulsesFired(0); f != 1 {
		t.Errorf("PulsesFired = %d, want 1", f)
	}
	if a := in.PulsesAbsorbed(0); a != 4 {
		t.Errorf("PulsesAbsorbed = %d, want 4", a)
	}
	// Count exhausted: nothing more fires.
	if got := in.PerturbCompute(0, 20*vtime.Time(vtime.Millisecond), vtime.Millisecond); got != vtime.Millisecond {
		t.Errorf("post-count perturbation = %v, want base", got)
	}
}

func TestPulsePeriodicTrain(t *testing.T) {
	plan, err := Parse("pulse rank=1 at=1ms extra=2ms every=3ms")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(plan, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	fires := 0
	for now := vtime.Time(0); now < 20*vtime.Time(vtime.Millisecond); now += vtime.Time(vtime.Millisecond) {
		if in.PerturbCompute(1, now, vtime.Millisecond) > vtime.Millisecond {
			fires++
		}
	}
	// Pulses due at 1,4,7,10,13,16,19 ms; the 1ms sampling catches each.
	if fires != 7 {
		t.Errorf("fired %d times over 20ms at 3ms period, want 7", fires)
	}
}

func TestPulseJSONRoundTrip(t *testing.T) {
	plan, err := Parse(`{"pulse":[{"ranks":"2-3","at":"5ms","extra":"1ms","every":"10ms","count":3}]}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pulses) != 1 {
		t.Fatalf("got %d pulses, want 1", len(plan.Pulses))
	}
	pu := plan.Pulses[0]
	if pu.At != 5*vtime.Millisecond || pu.Extra != vtime.Millisecond || pu.Every != 10*vtime.Millisecond || pu.Count != 3 {
		t.Errorf("pulse = %+v", pu)
	}
	if !pu.Ranks.Contains(2) || !pu.Ranks.Contains(3) || pu.Ranks.Contains(4) {
		t.Errorf("rank set = %v", pu.Ranks)
	}
	if err := plan.Validate(8); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPulseValidate(t *testing.T) {
	bad := []string{
		"pulse rank=9 at=1ms extra=1ms", // out of range for nranks=8
		"pulse rank=0 at=1ms",           // missing extra
	}
	for _, spec := range bad {
		plan, err := Parse(spec)
		if err != nil {
			continue // rejected at parse time — fine
		}
		if err := plan.Validate(8); err == nil {
			t.Errorf("Validate accepted %q", spec)
		}
	}
	if _, err := Parse("pulse rank=0 at=NaNms extra=1ms"); err == nil {
		t.Error("Parse accepted NaN duration")
	}
	if _, err := Parse("pulse rank=0 at=Infs extra=1ms"); err == nil {
		t.Error("Parse accepted Inf duration")
	}
	if _, err := Parse(`{"pulse":[{"ranks":"0","at":"1e300s","extra":"1ms"}]}`); err == nil {
		t.Error("Parse accepted overflowing duration")
	}
}

func TestGeneratePeriodic(t *testing.T) {
	plan := GeneratePeriodic(SingleRank(2), 10*vtime.Millisecond, 16*vtime.Millisecond, 5*vtime.Millisecond, 4)
	if err := plan.Validate(8); err != nil {
		t.Fatal(err)
	}
	if len(plan.Pulses) != 1 {
		t.Fatalf("got %d pulses, want 1", len(plan.Pulses))
	}
	pu := plan.Pulses[0]
	if pu.At != 10*vtime.Millisecond || pu.Every != 16*vtime.Millisecond || pu.Count != 4 {
		t.Errorf("pulse = %+v", pu)
	}
}

func TestGenerateResonant(t *testing.T) {
	plan := GenerateResonant(SingleRank(0), 100*vtime.Millisecond, 0.05, vtime.Millisecond, 10, 0)
	if got, want := plan.Pulses[0].Every, vtime.Duration(105*float64(vtime.Millisecond)); got != want {
		t.Errorf("resonant period = %v, want %v", got, want)
	}
	// Zero detune degenerates to the base period.
	plan = GenerateResonant(SingleRank(0), 100*vtime.Millisecond, 0, vtime.Millisecond, 10, 0)
	if got := plan.Pulses[0].Every; got != 100*vtime.Millisecond {
		t.Errorf("undetuned period = %v, want 100ms", got)
	}
}

func TestGenerateRandomDeterministic(t *testing.T) {
	set, err := ParseRankSet("0-7")
	if err != nil {
		t.Fatal(err)
	}
	gen := func(seed uint64) *Plan {
		return GenerateRandom(set, 8, 12, vtime.Second, vtime.Millisecond, 8*vtime.Millisecond, seed)
	}
	a, b := gen(42), gen(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different random plans")
	}
	if c := gen(43); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical random plans")
	}
	if len(a.Pulses) != 12 {
		t.Fatalf("got %d pulses, want 12", len(a.Pulses))
	}
	if err := a.Validate(8); err != nil {
		t.Fatal(err)
	}
	for i, pu := range a.Pulses {
		if pu.At < 0 || pu.At >= vtime.Second {
			t.Errorf("pulse %d at %v outside window", i, pu.At)
		}
		if pu.Extra < vtime.Millisecond || pu.Extra > 8*vtime.Millisecond {
			t.Errorf("pulse %d extra %v outside jitter range", i, pu.Extra)
		}
		if pu.Count != 1 || pu.Every != 0 {
			t.Errorf("pulse %d not one-shot: %+v", i, pu)
		}
	}
}

func TestParseNoise(t *testing.T) {
	plan, err := ParseNoise("periodic ranks=3 start=100ms period=16ms extra=5ms count=10", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pulses) != 1 || plan.Pulses[0].Every != 16*vtime.Millisecond {
		t.Errorf("plan = %+v", plan)
	}

	plan, err = ParseNoise("resonant ranks=0-1 base=16ms detune=0.1 extra=2ms count=4; random ranks=0-7 count=3 window=500ms extra=1ms-2ms", 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pulses) != 1+3 {
		t.Errorf("got %d pulses, want 4", len(plan.Pulses))
	}
	again, err := ParseNoise("resonant ranks=0-1 base=16ms detune=0.1 extra=2ms count=4; random ranks=0-7 count=3 window=500ms extra=1ms-2ms", 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, again) {
		t.Error("ParseNoise not deterministic for fixed seed")
	}

	for _, bad := range []string{
		"",
		"wobble ranks=0 extra=1ms",
		"periodic ranks=0 period=1ms", // missing extra
		"periodic ranks=0 extra=1ms",  // missing period
		"resonant ranks=0 base=1ms extra=1ms detune=2", // detune out of range
		"random ranks=0 window=1s extra=1ms",           // missing count
		"periodic ranks=99 period=1ms extra=1ms",       // out of range at validate
		"periodic ranks=0 period=1ms extra=1ms bogus=1",
	} {
		if _, err := ParseNoise(bad, 8, 1); err == nil {
			t.Errorf("ParseNoise accepted %q", bad)
		}
	}
}

func TestPlanMerge(t *testing.T) {
	a, err := Parse("slow rank=1 factor=2x")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("pulse rank=2 at=1ms extra=1ms; delay ranks=0 p=0.5 jitter=1ms-2ms")
	if err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	if len(a.Slows) != 1 || len(a.Pulses) != 1 || len(a.Delays) != 1 {
		t.Errorf("merged plan = %+v", a)
	}
	a.Merge(nil) // nil-safe
	if err := a.Validate(8); err != nil {
		t.Fatal(err)
	}
}

func TestPulseMarshalStable(t *testing.T) {
	plan := GeneratePeriodic(SingleRank(5), 400*vtime.Millisecond, 0, 80*vtime.Millisecond, 0)
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Pulses, back.Pulses) {
		t.Errorf("round trip: %+v != %+v", plan.Pulses, back.Pulses)
	}
}

// TestExampleNoisePlans keeps the runnable plans under examples/noise/
// honest: they must parse, validate at the documented rank count, and
// actually contain pulses.
func TestExampleNoisePlans(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "noise", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected at least 3 example plans, found %v", files)
	}
	for _, f := range files {
		plan, err := ParseFile(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if err := plan.Validate(16); err != nil {
			t.Errorf("%s: %v", f, err)
		}
		if len(plan.Pulses) == 0 {
			t.Errorf("%s: no pulses", f)
		}
	}
}
