package fault

import (
	"math"
	"testing"
)

// FuzzPlanDecode throws arbitrary bytes at the plan decoder (both the
// JSON form and the directive grammar share the Parse entry point) and
// checks the invariant the runtime depends on: whatever Parse accepts,
// Validate either rejects or every numeric field is finite and in range
// — no NaN/Inf jitter bounds, probabilities, or durations ever reach an
// Injector. Seeds come from the example plans under examples/noise/ and
// docs/FAULTS.md.
func FuzzPlanDecode(f *testing.F) {
	for _, seed := range []string{
		"",
		"crash rank=5 at marker=12",
		"delay ranks=0-7 p=0.1 jitter=2ms-4ms",
		"slow rank=3 factor=4x",
		"pulse ranks=5 at=400ms extra=80ms every=50ms count=4",
		"pulse rank=3 at=1ms extra=5ms; slow rank=3 factor=2x",
		`{"pulse":[{"ranks":"5","at":"400ms","extra":"80ms"}]}`,
		`{"pulse":[{"ranks":"3","at":"100ms","extra":"5ms","every":"16ms","count":10}]}`,
		`{"delay":[{"ranks":"0-7","p":0.5,"jitter":"1ms-3ms"}],"slow":[{"ranks":"2","factor":2}]}`,
		`{"crash":[{"rank":5,"marker":12}]}`,
		`{"delay":[{"ranks":"0","p":1e999,"jitter":"1ms"}]}`,
		`{"pulse":[{"ranks":"0","at":"NaNs","extra":"Infms"}]}`,
		"pulse rank=0 at=1e300s extra=1ms",
		"delay ranks=0 p=NaN jitter=1ms",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		plan, err := Parse(input)
		if err != nil {
			return
		}
		if err := plan.Validate(64); err != nil {
			return
		}
		for _, d := range plan.Delays {
			if math.IsNaN(d.P) || math.IsInf(d.P, 0) || d.P < 0 || d.P > 1 {
				t.Fatalf("validated delay has bad p: %v (input %q)", d.P, input)
			}
			if d.Min < 0 || d.Max < d.Min {
				t.Fatalf("validated delay has bad jitter [%v,%v] (input %q)", d.Min, d.Max, input)
			}
		}
		for _, s := range plan.Slows {
			if math.IsNaN(s.Factor) || math.IsInf(s.Factor, 0) || s.Factor <= 0 {
				t.Fatalf("validated slow has bad factor: %v (input %q)", s.Factor, input)
			}
		}
		for _, pu := range plan.Pulses {
			if pu.At < 0 || pu.Extra <= 0 || pu.Every < 0 || pu.Count < 0 {
				t.Fatalf("validated pulse has bad fields: %+v (input %q)", pu, input)
			}
		}
		// A validated plan must be injectable without panicking.
		in, err := NewInjector(plan, 1, 64)
		if err != nil {
			t.Fatalf("NewInjector rejected validated plan: %v (input %q)", err, input)
		}
		if in != nil { // empty plans yield a nil injector by contract
			in.PerturbCompute(0, 0, 1000)
		}
	})
}
