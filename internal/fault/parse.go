package fault

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"chameleon/internal/vtime"
)

// RankSet is a compact set of ranks: a union of closed ranges, as
// written in plan specs ("3", "0-7", "1,5,8-11").
type RankSet struct {
	ranges []rankRange
}

type rankRange struct{ lo, hi int }

// ParseRankSet parses the textual rank-set form.
func ParseRankSet(s string) (RankSet, error) {
	var out RankSet
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi := part, part
		if i := strings.Index(part, "-"); i > 0 {
			lo, hi = part[:i], part[i+1:]
		}
		l, err := strconv.Atoi(strings.TrimSpace(lo))
		if err != nil {
			return RankSet{}, fmt.Errorf("fault: bad rank %q in set %q", lo, s)
		}
		h, err := strconv.Atoi(strings.TrimSpace(hi))
		if err != nil {
			return RankSet{}, fmt.Errorf("fault: bad rank %q in set %q", hi, s)
		}
		if l < 0 || h < l {
			return RankSet{}, fmt.Errorf("fault: bad rank range %q", part)
		}
		out.ranges = append(out.ranges, rankRange{lo: l, hi: h})
	}
	if len(out.ranges) == 0 {
		return RankSet{}, fmt.Errorf("fault: empty rank set %q", s)
	}
	return out, nil
}

// SingleRank returns the set {r}.
func SingleRank(r int) RankSet {
	return RankSet{ranges: []rankRange{{lo: r, hi: r}}}
}

// Empty reports whether the set holds no ranks.
func (s RankSet) Empty() bool { return len(s.ranges) == 0 }

// Contains reports set membership.
func (s RankSet) Contains(r int) bool {
	for _, rg := range s.ranges {
		if r >= rg.lo && r <= rg.hi {
			return true
		}
	}
	return false
}

// Max returns the largest rank in the set (-1 when empty).
func (s RankSet) Max() int {
	m := -1
	for _, rg := range s.ranges {
		if rg.hi > m {
			m = rg.hi
		}
	}
	return m
}

// Ranks expands the set into a sorted slice, dropping ranks >= nranks.
func (s RankSet) Ranks(nranks int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, rg := range s.ranges {
		for r := rg.lo; r <= rg.hi && r < nranks; r++ {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// String renders the set in the parseable form.
func (s RankSet) String() string {
	var parts []string
	for _, rg := range s.ranges {
		if rg.lo == rg.hi {
			parts = append(parts, strconv.Itoa(rg.lo))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", rg.lo, rg.hi))
		}
	}
	return strings.Join(parts, ",")
}

// MarshalJSON writes the textual form.
func (s RankSet) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts the textual form or a bare integer.
func (s *RankSet) UnmarshalJSON(data []byte) error {
	var str string
	if err := json.Unmarshal(data, &str); err != nil {
		var n int
		if err2 := json.Unmarshal(data, &n); err2 != nil {
			return fmt.Errorf("fault: rank set must be a string or integer: %w", err)
		}
		str = strconv.Itoa(n)
	}
	set, err := ParseRankSet(str)
	if err != nil {
		return err
	}
	*s = set
	return nil
}

// Parse parses a fault plan. Input starting with '{' is the JSON form;
// anything else is the directive grammar — directives separated by ';'
// or newlines, each a verb followed by key=value fields:
//
//	crash rank=5 at marker=12
//	delay ranks=0-7 p=0.1 jitter=2ms-4ms
//	slow rank=3 factor=4x
//	pulse ranks=5 at=400ms extra=80ms every=50ms count=4
//
// Keys: crash takes rank= and marker= (the bare word "at" is noise);
// delay takes ranks= (or rank=), p= (or prob=), and jitter=DUR[-DUR]
// (or min=/max=); slow takes ranks= (or rank=) and factor= (a trailing
// "x" is accepted); pulse takes ranks= (or rank=), at= (virtual-time
// anchor), extra= (injected compute), and optionally every= (period)
// and count= (firing bound). Durations use ns/us/ms/s suffixes. An
// empty input yields an empty plan.
func Parse(input string) (*Plan, error) {
	input = strings.TrimSpace(input)
	if input == "" {
		return &Plan{}, nil
	}
	if strings.HasPrefix(input, "{") {
		return parseJSON([]byte(input))
	}
	plan := &Plan{}
	split := func(r rune) bool { return r == ';' || r == '\n' }
	for _, directive := range strings.FieldsFunc(input, split) {
		fields := strings.Fields(directive)
		if len(fields) == 0 {
			continue
		}
		verb, args := fields[0], fields[1:]
		kv := map[string]string{}
		for _, a := range args {
			if a == "at" { // "crash rank=5 at marker=12" reads naturally
				continue
			}
			k, v, ok := strings.Cut(a, "=")
			if !ok {
				return nil, fmt.Errorf("fault: %q: expected key=value, got %q", verb, a)
			}
			if _, dup := kv[k]; dup {
				return nil, fmt.Errorf("fault: %q: duplicate key %q", verb, k)
			}
			kv[k] = v
		}
		var err error
		switch verb {
		case "crash":
			err = parseCrash(plan, kv)
		case "delay":
			err = parseDelay(plan, kv)
		case "slow":
			err = parseSlow(plan, kv)
		case "pulse":
			err = parsePulse(plan, kv)
		default:
			err = fmt.Errorf("fault: unknown directive %q (want crash, delay, slow, or pulse)", verb)
		}
		if err != nil {
			return nil, err
		}
	}
	return plan, nil
}

// ParseFile loads a plan from a file (JSON or directive grammar,
// auto-detected as in Parse).
func ParseFile(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return Parse(string(data))
}

func parseJSON(data []byte) (*Plan, error) {
	// Durations come in as strings ("2ms") or jitter ranges ("2ms-4ms"),
	// so unmarshal through a mirror with textual fields.
	var doc struct {
		Crash []Crash `json:"crash"`
		Delay []struct {
			Ranks  RankSet `json:"ranks"`
			P      float64 `json:"p"`
			Jitter string  `json:"jitter"`
			Min    string  `json:"min"`
			Max    string  `json:"max"`
		} `json:"delay"`
		Slow []struct {
			Ranks  RankSet `json:"ranks"`
			Factor float64 `json:"factor"`
		} `json:"slow"`
		Pulse []struct {
			Ranks RankSet `json:"ranks"`
			At    string  `json:"at"`
			Extra string  `json:"extra"`
			Every string  `json:"every"`
			Count int     `json:"count"`
		} `json:"pulse"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("fault: bad JSON plan: %w", err)
	}
	plan := &Plan{Crashes: doc.Crash}
	for _, d := range doc.Delay {
		out := Delay{Ranks: d.Ranks, P: d.P}
		var err error
		switch {
		case d.Jitter != "":
			out.Min, out.Max, err = parseJitter(d.Jitter)
		default:
			if d.Min != "" {
				out.Min, err = parseDuration(d.Min)
			}
			if err == nil && d.Max != "" {
				out.Max, err = parseDuration(d.Max)
			}
			if out.Max == 0 {
				out.Max = out.Min
			}
		}
		if err != nil {
			return nil, err
		}
		plan.Delays = append(plan.Delays, out)
	}
	for _, s := range doc.Slow {
		plan.Slows = append(plan.Slows, Slow{Ranks: s.Ranks, Factor: s.Factor})
	}
	for i, pu := range doc.Pulse {
		out := Pulse{Ranks: pu.Ranks, Count: pu.Count}
		var err error
		if pu.At != "" {
			if out.At, err = parseDuration(pu.At); err != nil {
				return nil, err
			}
		}
		if pu.Extra == "" {
			return nil, fmt.Errorf("fault: pulse %d: missing extra", i)
		}
		if out.Extra, err = parseDuration(pu.Extra); err != nil {
			return nil, err
		}
		if pu.Every != "" {
			if out.Every, err = parseDuration(pu.Every); err != nil {
				return nil, err
			}
		}
		plan.Pulses = append(plan.Pulses, out)
	}
	return plan, nil
}

func parseCrash(plan *Plan, kv map[string]string) error {
	rank, err := needInt(kv, "crash", "rank")
	if err != nil {
		return err
	}
	marker, err := needInt(kv, "crash", "marker")
	if err != nil {
		return err
	}
	if err := noExtra(kv, "crash", "rank", "marker"); err != nil {
		return err
	}
	plan.Crashes = append(plan.Crashes, Crash{Rank: rank, Marker: marker})
	return nil
}

func parseDelay(plan *Plan, kv map[string]string) error {
	set, err := needRanks(kv, "delay")
	if err != nil {
		return err
	}
	d := Delay{Ranks: set, P: 1}
	if v, ok := first(kv, "p", "prob"); ok {
		if d.P, err = strconv.ParseFloat(v, 64); err != nil {
			return fmt.Errorf("fault: delay: bad probability %q", v)
		}
	}
	switch {
	case kv["jitter"] != "":
		if d.Min, d.Max, err = parseJitter(kv["jitter"]); err != nil {
			return err
		}
	default:
		if v, ok := kv["min"]; ok {
			if d.Min, err = parseDuration(v); err != nil {
				return err
			}
		}
		if v, ok := kv["max"]; ok {
			if d.Max, err = parseDuration(v); err != nil {
				return err
			}
		}
		if d.Max == 0 {
			d.Max = d.Min
		}
	}
	if d.Min == 0 && d.Max == 0 {
		return fmt.Errorf("fault: delay: missing jitter= (or min=/max=)")
	}
	if err := noExtra(kv, "delay", "rank", "ranks", "p", "prob", "jitter", "min", "max"); err != nil {
		return err
	}
	plan.Delays = append(plan.Delays, d)
	return nil
}

func parseSlow(plan *Plan, kv map[string]string) error {
	set, err := needRanks(kv, "slow")
	if err != nil {
		return err
	}
	v, ok := kv["factor"]
	if !ok {
		return fmt.Errorf("fault: slow: missing factor=")
	}
	f, err := strconv.ParseFloat(strings.TrimSuffix(v, "x"), 64)
	if err != nil {
		return fmt.Errorf("fault: slow: bad factor %q", v)
	}
	if err := noExtra(kv, "slow", "rank", "ranks", "factor"); err != nil {
		return err
	}
	plan.Slows = append(plan.Slows, Slow{Ranks: set, Factor: f})
	return nil
}

func parsePulse(plan *Plan, kv map[string]string) error {
	set, err := needRanks(kv, "pulse")
	if err != nil {
		return err
	}
	pu := Pulse{Ranks: set}
	if v, ok := kv["at"]; ok {
		if pu.At, err = parseDuration(v); err != nil {
			return err
		}
	}
	v, ok := kv["extra"]
	if !ok {
		return fmt.Errorf("fault: pulse: missing extra=")
	}
	if pu.Extra, err = parseDuration(v); err != nil {
		return err
	}
	if v, ok := kv["every"]; ok {
		if pu.Every, err = parseDuration(v); err != nil {
			return err
		}
	}
	if v, ok := kv["count"]; ok {
		if pu.Count, err = strconv.Atoi(v); err != nil {
			return fmt.Errorf("fault: pulse: bad count %q", v)
		}
	}
	if err := noExtra(kv, "pulse", "rank", "ranks", "at", "extra", "every", "count"); err != nil {
		return err
	}
	plan.Pulses = append(plan.Pulses, pu)
	return nil
}

func needRanks(kv map[string]string, verb string) (RankSet, error) {
	v, ok := first(kv, "ranks", "rank")
	if !ok {
		return RankSet{}, fmt.Errorf("fault: %s: missing ranks=", verb)
	}
	return ParseRankSet(v)
}

func needInt(kv map[string]string, verb, key string) (int, error) {
	v, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("fault: %s: missing %s=", verb, key)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("fault: %s: bad %s %q", verb, key, v)
	}
	return n, nil
}

func first(kv map[string]string, keys ...string) (string, bool) {
	for _, k := range keys {
		if v, ok := kv[k]; ok {
			return v, true
		}
	}
	return "", false
}

func noExtra(kv map[string]string, verb string, allowed ...string) error {
	ok := make(map[string]bool, len(allowed))
	for _, k := range allowed {
		ok[k] = true
	}
	for k := range kv {
		if !ok[k] {
			return fmt.Errorf("fault: %s: unknown key %q", verb, k)
		}
	}
	return nil
}

// parseJitter parses "2ms" (fixed) or "2ms-4ms" (uniform range).
func parseJitter(s string) (min, max vtime.Duration, err error) {
	if lo, hi, ok := splitRange(s); ok {
		if min, err = parseDuration(lo); err != nil {
			return 0, 0, err
		}
		if max, err = parseDuration(hi); err != nil {
			return 0, 0, err
		}
		if max < min {
			return 0, 0, fmt.Errorf("fault: jitter range %q inverted", s)
		}
		return min, max, nil
	}
	if min, err = parseDuration(s); err != nil {
		return 0, 0, err
	}
	return min, min, nil
}

// splitRange splits "2ms-4ms" at the dash between two durations (the
// dash can never start a duration, so the first candidate wins).
func splitRange(s string) (lo, hi string, ok bool) {
	for i := 1; i < len(s)-1; i++ {
		if s[i] != '-' {
			continue
		}
		if _, err := parseDuration(s[:i]); err == nil {
			if _, err := parseDuration(s[i+1:]); err == nil {
				return s[:i], s[i+1:], true
			}
		}
	}
	return "", "", false
}

var durUnits = []struct {
	suffix string
	unit   vtime.Duration
}{
	{"ns", vtime.Nanosecond},
	{"us", vtime.Microsecond},
	{"µs", vtime.Microsecond},
	{"ms", vtime.Millisecond},
	{"s", vtime.Second},
}

func parseDuration(s string) (vtime.Duration, error) {
	s = strings.TrimSpace(s)
	for _, u := range durUnits {
		if !strings.HasSuffix(s, u.suffix) {
			continue
		}
		num := strings.TrimSuffix(s, u.suffix)
		// "s" also suffixes "ns"/"us"/"ms"; require the number to parse.
		v, err := strconv.ParseFloat(num, 64)
		if err != nil {
			continue
		}
		// ParseFloat accepts "NaN" and "Inf"; converting either to the
		// integer Duration is undefined behavior, so reject them here
		// (plan JSON is untrusted input — see FuzzPlanDecode).
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("fault: non-finite duration %q", s)
		}
		if v < 0 {
			return 0, fmt.Errorf("fault: negative duration %q", s)
		}
		if v*float64(u.unit) > float64(math.MaxInt64) {
			return 0, fmt.Errorf("fault: duration %q overflows", s)
		}
		return vtime.Duration(v * float64(u.unit)), nil
	}
	return 0, fmt.Errorf("fault: bad duration %q (want e.g. 500ns, 2us, 3ms, 1s)", s)
}
