// Package fault is the deterministic fault-injection subsystem of the
// simulated MPI runtime.
//
// A Plan describes what goes wrong during a run: crash-stop failures
// (a rank exits cleanly at a marker boundary), probabilistic delays
// (extra per-compute jitter), slowdowns (a multiplicative stretch of
// a rank's computation), and pulses (one-off or periodic noise
// injections anchored at a virtual time — the idle-wave sources of
// Afzal et al., see docs/OBSERVABILITY.md). Plans parse from a small
// text grammar or JSON (see Parse); noise-plan generators build pulse
// trains from a seed (see noise.go). An Injector binds a validated plan
// to a seed and a rank count and answers the runtime's questions — how
// long does this compute really take, does this rank die at this
// marker, who is still alive after marker m — from pure functions of
// (plan, seed), so the same plan and seed reproduce the same perturbed
// run bit for bit.
//
// Crash-stop semantics follow the paper's marker discipline: markers are
// the only global synchronization points Chameleon owns, so crashes fire
// exactly there, and every surviving rank learns the new membership at
// the same marker. The injector doubles as the failure detector: because
// the crash schedule is shared, survivors need no timeout protocol (the
// ULFM "shrink" step collapses to a table lookup). Rank 0 may never
// crash — it holds the online trace.
package fault

import (
	"fmt"
	"math"
	"sort"

	"chameleon/internal/vtime"
)

// Crash stops one rank at a marker boundary: the rank's goroutine exits
// cleanly (crash-stop, no Byzantine behavior) at its Marker-th marker
// barrier, before participating in it.
type Crash struct {
	Rank   int `json:"rank"`
	Marker int `json:"marker"`
}

// Delay adds jitter to matching ranks' computation: each Compute call
// independently draws Bernoulli(P); on success an extra duration uniform
// in [Min, Max] is added.
type Delay struct {
	Ranks RankSet        `json:"ranks"`
	P     float64        `json:"p"`
	Min   vtime.Duration `json:"min_ns"`
	Max   vtime.Duration `json:"max_ns"`
}

// Slow stretches matching ranks' computation by a constant factor
// (CPU degradation / a straggler node).
type Slow struct {
	Ranks  RankSet `json:"ranks"`
	Factor float64 `json:"factor"`
}

// Pulse injects a one-off (or periodic) noise burst anchored at a
// virtual time: the first Compute call on a matching rank at or past At
// is stretched by Extra. With Every > 0 the pulse re-fires each period;
// Count bounds the number of firings (0 = unbounded for periodic
// pulses, exactly one for one-shots). At most one firing lands per
// Compute call — periods that elapse while the rank is blocked in a
// receive are absorbed, not queued, which is exactly the idle-wave
// decay mechanism: noise hitting an already-waiting rank does no
// additional damage.
type Pulse struct {
	Ranks RankSet        `json:"ranks"`
	At    vtime.Duration `json:"at_ns"`
	Extra vtime.Duration `json:"extra_ns"`
	Every vtime.Duration `json:"every_ns,omitempty"`
	Count int            `json:"count,omitempty"`
}

// Plan is a complete fault schedule.
type Plan struct {
	Crashes []Crash `json:"crash,omitempty"`
	Delays  []Delay `json:"delay,omitempty"`
	Slows   []Slow  `json:"slow,omitempty"`
	Pulses  []Pulse `json:"pulse,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Delays) == 0 &&
		len(p.Slows) == 0 && len(p.Pulses) == 0)
}

// Merge appends src's directives to p (both may be nil; the merged plan
// is returned). chamrun uses it to compose -faults with -noise.
func (p *Plan) Merge(src *Plan) *Plan {
	if p == nil {
		p = &Plan{}
	}
	if src != nil {
		p.Crashes = append(p.Crashes, src.Crashes...)
		p.Delays = append(p.Delays, src.Delays...)
		p.Slows = append(p.Slows, src.Slows...)
		p.Pulses = append(p.Pulses, src.Pulses...)
	}
	return p
}

// HasCrashes reports whether the plan contains crash-stop failures
// (which require marker-instrumented runs to fire).
func (p *Plan) HasCrashes() bool { return p != nil && len(p.Crashes) > 0 }

// Validate checks the plan against a rank count. Rank 0 cannot crash:
// it folds the online trace, and the paper's protocol has no provision
// for re-homing it (a documented limitation, see docs/FAULTS.md).
func (p *Plan) Validate(nranks int) error {
	if p == nil {
		return nil
	}
	seen := make(map[int]bool, len(p.Crashes))
	for _, c := range p.Crashes {
		if c.Rank <= 0 || c.Rank >= nranks {
			if c.Rank == 0 {
				return fmt.Errorf("fault: rank 0 cannot crash (it holds the online trace)")
			}
			return fmt.Errorf("fault: crash rank %d out of range [1,%d)", c.Rank, nranks)
		}
		if c.Marker < 1 {
			return fmt.Errorf("fault: crash marker %d for rank %d (markers are 1-based)", c.Marker, c.Rank)
		}
		if seen[c.Rank] {
			return fmt.Errorf("fault: duplicate crash for rank %d", c.Rank)
		}
		seen[c.Rank] = true
	}
	for i, d := range p.Delays {
		if d.Ranks.Empty() {
			return fmt.Errorf("fault: delay %d has an empty rank set", i)
		}
		if d.Ranks.Max() >= nranks {
			return fmt.Errorf("fault: delay %d targets rank %d out of range [0,%d)", i, d.Ranks.Max(), nranks)
		}
		// The negated comparison also rejects NaN, which an ordered
		// check (d.P < 0 || d.P > 1) silently accepts.
		if !(d.P >= 0 && d.P <= 1) || math.IsNaN(d.P) || math.IsInf(d.P, 0) {
			return fmt.Errorf("fault: delay %d probability %g outside [0,1]", i, d.P)
		}
		if d.Min < 0 || d.Max < d.Min {
			return fmt.Errorf("fault: delay %d jitter range [%v,%v] invalid", i, d.Min, d.Max)
		}
	}
	for i, s := range p.Slows {
		if s.Ranks.Empty() {
			return fmt.Errorf("fault: slow %d has an empty rank set", i)
		}
		if s.Ranks.Max() >= nranks {
			return fmt.Errorf("fault: slow %d targets rank %d out of range [0,%d)", i, s.Ranks.Max(), nranks)
		}
		if !(s.Factor > 0) || math.IsInf(s.Factor, 0) {
			return fmt.Errorf("fault: slow %d factor %g must be positive and finite", i, s.Factor)
		}
	}
	for i, pu := range p.Pulses {
		if pu.Ranks.Empty() {
			return fmt.Errorf("fault: pulse %d has an empty rank set", i)
		}
		if pu.Ranks.Max() >= nranks {
			return fmt.Errorf("fault: pulse %d targets rank %d out of range [0,%d)", i, pu.Ranks.Max(), nranks)
		}
		if pu.At < 0 {
			return fmt.Errorf("fault: pulse %d anchor %v negative", i, pu.At)
		}
		if pu.Extra <= 0 {
			return fmt.Errorf("fault: pulse %d extra %v must be positive", i, pu.Extra)
		}
		if pu.Every < 0 {
			return fmt.Errorf("fault: pulse %d period %v negative", i, pu.Every)
		}
		if pu.Count < 0 {
			return fmt.Errorf("fault: pulse %d count %d negative", i, pu.Count)
		}
	}
	return nil
}

// rngState is one rank's splitmix64 state, padded so concurrent rank
// goroutines never share a cache line.
type rngState struct {
	s uint64
	_ [7]uint64
}

// Injector binds a validated plan to a seed and rank count. All methods
// except PerturbCompute are safe for concurrent use (they read immutable
// state); PerturbCompute(rank, ...) must be called only from rank's own
// goroutine, like every other per-rank runtime hook.
type Injector struct {
	plan *Plan
	seed uint64
	n    int
	// crashAt[rank] is the 1-based crash marker, or -1.
	crashAt []int
	// slow[rank] is the combined multiplicative factor (1 = none).
	slow []float64
	// crashMarkers is the sorted multiset of crash markers (epoch math).
	crashMarkers []int
	rng          []rngState
	// pulses[rank][i] tracks how many firings of plan.Pulses[i] have been
	// charged or absorbed on rank (each rank owns its own row).
	pulses [][]int
	// pulseFired / pulseAbsorbed count per-rank firings and absorptions.
	pulseFired    []uint64
	pulseAbsorbed []uint64
}

// NewInjector validates the plan and builds an injector. An empty (or
// nil) plan returns (nil, nil): a nil *Injector is the zero-fault mode
// and every runtime hook treats it as "feature off", which is what makes
// zero-fault runs bit-identical to runs without this subsystem.
func NewInjector(p *Plan, seed uint64, nranks int) (*Injector, error) {
	if p.Empty() {
		return nil, nil
	}
	if err := p.Validate(nranks); err != nil {
		return nil, err
	}
	in := &Injector{
		plan:    p,
		seed:    seed,
		n:       nranks,
		crashAt: make([]int, nranks),
		slow:    make([]float64, nranks),
		rng:     make([]rngState, nranks),
	}
	if len(p.Pulses) > 0 {
		in.pulses = make([][]int, nranks)
		in.pulseFired = make([]uint64, nranks)
		in.pulseAbsorbed = make([]uint64, nranks)
	}
	for r := range in.crashAt {
		in.crashAt[r] = -1
		in.slow[r] = 1
		in.rng[r].s = mix64(seed ^ (uint64(r)+1)*0x9e3779b97f4a7c15)
		if in.pulses != nil {
			// Per-rank rows are allocated separately so rank goroutines
			// never write into a shared backing array.
			in.pulses[r] = make([]int, len(p.Pulses))
		}
	}
	for _, c := range p.Crashes {
		in.crashAt[c.Rank] = c.Marker
		in.crashMarkers = append(in.crashMarkers, c.Marker)
	}
	sort.Ints(in.crashMarkers)
	for _, s := range p.Slows {
		for _, r := range s.Ranks.Ranks(nranks) {
			in.slow[r] *= s.Factor
		}
	}
	return in, nil
}

// Ranks returns the rank count the injector was built for.
func (in *Injector) Ranks() int { return in.n }

// Seed returns the injector's seed.
func (in *Injector) Seed() uint64 { return in.seed }

// Plan returns the underlying plan.
func (in *Injector) Plan() *Plan { return in.plan }

// CrashMarker returns the 1-based marker at which rank crashes, or -1.
func (in *Injector) CrashMarker(rank int) int {
	if rank < 0 || rank >= in.n {
		return -1
	}
	return in.crashAt[rank]
}

// AliveAfter returns the ranks still alive once marker m has fired
// (a rank with crash marker c is dead for every m >= c). The slice is
// freshly allocated and sorted; identical on every caller for a given m.
func (in *Injector) AliveAfter(m int) []int {
	alive := make([]int, 0, in.n)
	for r := 0; r < in.n; r++ {
		if c := in.crashAt[r]; c < 0 || c > m {
			alive = append(alive, r)
		}
	}
	return alive
}

// EpochAt returns the membership epoch at marker m: the number of
// crashes that have fired by then. Epoch 0 is full membership.
func (in *Injector) EpochAt(m int) int {
	return sort.SearchInts(in.crashMarkers, m+1)
}

// PerturbCompute maps a nominal compute duration for rank to its
// perturbed duration: slow factors multiply, each matching delay
// directive draws independently, and due pulses fire (now is the rank's
// virtual clock at the start of the compute, which anchors pulse
// firing). The draw sequence is a pure function of (seed, rank, call
// index), so runs are reproducible. Must be called from rank's own
// goroutine.
func (in *Injector) PerturbCompute(rank int, now vtime.Time, d vtime.Duration) vtime.Duration {
	out := d
	if f := in.slow[rank]; f != 1 {
		out = vtime.Duration(float64(out) * f)
	}
	for i := range in.plan.Delays {
		dl := &in.plan.Delays[i]
		if !dl.Ranks.Contains(rank) {
			continue
		}
		if in.rand01(rank) >= dl.P {
			continue
		}
		extra := dl.Min
		if span := dl.Max - dl.Min; span > 0 {
			extra += vtime.Duration(in.rand01(rank) * float64(span))
		}
		out += extra
	}
	if in.pulses != nil {
		out += in.firePulses(rank, now)
	}
	return out
}

// firePulses charges every pulse directive due on rank at virtual time
// now. A pulse fires at most once per call; periods that elapsed beyond
// the one being charged (the rank sat blocked through them) are
// absorbed and only counted.
func (in *Injector) firePulses(rank int, now vtime.Time) vtime.Duration {
	var extra vtime.Duration
	for i := range in.plan.Pulses {
		pu := &in.plan.Pulses[i]
		if !pu.Ranks.Contains(rank) {
			continue
		}
		limit := pu.Count
		if pu.Every <= 0 && (limit == 0 || limit > 1) {
			limit = 1 // a one-shot pulse fires exactly once
		}
		fired := in.pulses[rank][i]
		if limit > 0 && fired >= limit {
			continue
		}
		due := vtime.Time(pu.At) + vtime.Time(fired)*vtime.Time(pu.Every)
		if now < due {
			continue
		}
		extra += pu.Extra
		in.pulseFired[rank]++
		next := fired + 1
		if pu.Every > 0 {
			// Periods that already elapsed are absorbed: the rank was
			// waiting when they hit, so they add no further skew.
			elapsed := int((now-vtime.Time(pu.At))/vtime.Time(pu.Every)) + 1
			if limit > 0 && elapsed > limit {
				elapsed = limit
			}
			if elapsed > next {
				in.pulseAbsorbed[rank] += uint64(elapsed - next)
				next = elapsed
			}
		}
		in.pulses[rank][i] = next
	}
	return extra
}

// PulsesFired returns how many pulse firings rank has absorbed into its
// compute time so far (reads race with the rank's goroutine; call after
// the run, or from the rank itself).
func (in *Injector) PulsesFired(rank int) uint64 {
	if in.pulseFired == nil || rank < 0 || rank >= in.n {
		return 0
	}
	return in.pulseFired[rank]
}

// PulsesAbsorbed returns how many pulse periods elapsed unseen while
// rank was blocked (the idle-wave absorption count).
func (in *Injector) PulsesAbsorbed(rank int) uint64 {
	if in.pulseAbsorbed == nil || rank < 0 || rank >= in.n {
		return 0
	}
	return in.pulseAbsorbed[rank]
}

// rand01 draws a uniform float in [0,1) from rank's private stream.
func (in *Injector) rand01(rank int) float64 {
	st := &in.rng[rank]
	st.s += 0x9e3779b97f4a7c15
	return float64(mix64(st.s)>>11) / float64(1<<53)
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
