// Noise-plan generators. A noise plan is an ordinary fault Plan whose
// directives are pulse trains synthesized from a compact spec instead of
// written out by hand. Three shapes cover the idle-wave experiments of
// Afzal et al. (see docs/OBSERVABILITY.md):
//
//	periodic  — a fixed-period pulse train on chosen ranks. Period equal
//	            to the app's iteration time keeps re-exciting the same
//	            wave; much longer periods emit independent one-off waves.
//	resonant  — a periodic train whose period is the halo-exchange
//	            period times (1+detune). Small positive detune makes the
//	            injection drift slowly across the iteration phase, the
//	            strongest sustained-desynchronization driver.
//	random    — one-off pulses at seeded-uniform (rank, time) points
//	            inside a window, the "natural system noise" baseline.
//
// Every generator is a pure function of its arguments (plus a seed for
// random), so a scenario is reproducible from the textual spec alone.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"chameleon/internal/vtime"
)

// GeneratePeriodic returns a plan with one periodic pulse train: each
// rank in set receives extra compute time at start, start+period,
// start+2*period, ... for count firings (count<=0 means unbounded).
func GeneratePeriodic(set RankSet, start, period, extra vtime.Duration, count int) *Plan {
	if count < 0 {
		count = 0
	}
	return &Plan{Pulses: []Pulse{{
		Ranks: set,
		At:    start,
		Extra: extra,
		Every: period,
		Count: count,
	}}}
}

// GenerateResonant returns a periodic train whose period is base*(1+detune).
// base should be the application's halo-exchange (iteration) period; a
// small detune (e.g. 0.05) makes each successive pulse land slightly
// later in the iteration phase, sweeping the injection across the
// compute/wait boundary — the resonance that sustains idle waves.
func GenerateResonant(set RankSet, base vtime.Duration, detune float64, extra vtime.Duration, count int, start vtime.Duration) *Plan {
	period := vtime.Duration(float64(base) * (1 + detune))
	if period <= 0 {
		period = base
	}
	return GeneratePeriodic(set, start, period, extra, count)
}

// GenerateRandom returns count one-off pulses at seeded-uniform times in
// [0, window) on ranks drawn uniformly from set (materialized against
// nranks). Extra durations are uniform in [minExtra, maxExtra]. The same
// (arguments, seed) pair always yields the same plan.
func GenerateRandom(set RankSet, nranks, count int, window, minExtra, maxExtra vtime.Duration, seed uint64) *Plan {
	ranks := set.Ranks(nranks)
	if len(ranks) == 0 || count <= 0 || window <= 0 {
		return &Plan{}
	}
	if maxExtra < minExtra {
		minExtra, maxExtra = maxExtra, minExtra
	}
	s := mix64(seed ^ 0xda3e39cb94b95bdb)
	next := func() float64 {
		s += 0x9e3779b97f4a7c15
		return float64(mix64(s)>>11) / float64(1<<53)
	}
	plan := &Plan{}
	for i := 0; i < count; i++ {
		rank := ranks[int(next()*float64(len(ranks)))]
		at := vtime.Duration(next() * float64(window))
		extra := minExtra + vtime.Duration(next()*float64(maxExtra-minExtra))
		if extra <= 0 {
			extra = minExtra
			if extra <= 0 {
				extra = vtime.Microsecond
			}
		}
		plan.Pulses = append(plan.Pulses, Pulse{
			Ranks: SingleRank(rank),
			At:    at,
			Extra: extra,
			Count: 1,
		})
	}
	return plan
}

// ParseNoise parses a textual noise spec into a Plan. The grammar mirrors
// Parse: semicolon-separated directives of key=value fields.
//
//	periodic ranks=3 start=100ms period=16ms extra=5ms count=10
//	resonant ranks=0-3 base=16ms detune=0.05 extra=5ms count=20 [start=0]
//	random   ranks=0-7 count=12 window=1s extra=1ms-8ms
//
// nranks materializes rank sets for the random generator; seed feeds its
// draws. Durations take ns/us/ms/s suffixes like fault plans. The result
// validates against nranks before returning.
func ParseNoise(spec string, nranks int, seed uint64) (*Plan, error) {
	plan := &Plan{}
	for _, stmt := range strings.Split(spec, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		fields := strings.Fields(stmt)
		verb := fields[0]
		kv := map[string]string{}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("fault: noise %s: bad field %q", verb, f)
			}
			kv[k] = v
		}
		var sub *Plan
		var err error
		switch verb {
		case "periodic":
			sub, err = parseNoisePeriodic(kv)
		case "resonant":
			sub, err = parseNoiseResonant(kv)
		case "random":
			sub, err = parseNoiseRandom(kv, nranks, seed)
		default:
			return nil, fmt.Errorf("fault: unknown noise generator %q", verb)
		}
		if err != nil {
			return nil, err
		}
		plan.Merge(sub)
		seed = mix64(seed + 0x9e3779b97f4a7c15) // independent draws per directive
	}
	if plan.Empty() {
		return nil, fmt.Errorf("fault: empty noise spec")
	}
	if err := plan.Validate(nranks); err != nil {
		return nil, err
	}
	return plan, nil
}

func parseNoisePeriodic(kv map[string]string) (*Plan, error) {
	set, err := needRanks(kv, "periodic")
	if err != nil {
		return nil, err
	}
	period, err := needDuration(kv, "periodic", "period")
	if err != nil {
		return nil, err
	}
	extra, err := needDuration(kv, "periodic", "extra")
	if err != nil {
		return nil, err
	}
	start, err := optDuration(kv, "start", 0)
	if err != nil {
		return nil, err
	}
	count, err := optInt(kv, "count", 0)
	if err != nil {
		return nil, err
	}
	if err := noExtra(kv, "periodic", "rank", "ranks", "start", "period", "extra", "count"); err != nil {
		return nil, err
	}
	return GeneratePeriodic(set, start, period, extra, count), nil
}

func parseNoiseResonant(kv map[string]string) (*Plan, error) {
	set, err := needRanks(kv, "resonant")
	if err != nil {
		return nil, err
	}
	base, err := needDuration(kv, "resonant", "base")
	if err != nil {
		return nil, err
	}
	extra, err := needDuration(kv, "resonant", "extra")
	if err != nil {
		return nil, err
	}
	detune := 0.0
	if v, ok := kv["detune"]; ok {
		detune, err = strconv.ParseFloat(v, 64)
		if err != nil || !(detune > -1 && detune < 1) {
			return nil, fmt.Errorf("fault: resonant: bad detune %q (want -1 < detune < 1)", v)
		}
	}
	start, err := optDuration(kv, "start", 0)
	if err != nil {
		return nil, err
	}
	count, err := optInt(kv, "count", 0)
	if err != nil {
		return nil, err
	}
	if err := noExtra(kv, "resonant", "rank", "ranks", "base", "detune", "extra", "count", "start"); err != nil {
		return nil, err
	}
	return GenerateResonant(set, base, detune, extra, count, start), nil
}

func parseNoiseRandom(kv map[string]string, nranks int, seed uint64) (*Plan, error) {
	set, err := needRanks(kv, "random")
	if err != nil {
		return nil, err
	}
	count, err := optInt(kv, "count", 0)
	if err != nil {
		return nil, err
	}
	if count <= 0 {
		return nil, fmt.Errorf("fault: random: missing count=")
	}
	window, err := needDuration(kv, "random", "window")
	if err != nil {
		return nil, err
	}
	v, ok := kv["extra"]
	if !ok {
		return nil, fmt.Errorf("fault: random: missing extra=")
	}
	minExtra, maxExtra, err := parseJitter(v)
	if err != nil {
		return nil, err
	}
	if err := noExtra(kv, "random", "rank", "ranks", "count", "window", "extra"); err != nil {
		return nil, err
	}
	return GenerateRandom(set, nranks, count, window, minExtra, maxExtra, seed), nil
}

func needDuration(kv map[string]string, verb, key string) (vtime.Duration, error) {
	v, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("fault: %s: missing %s=", verb, key)
	}
	return parseDuration(v)
}

func optDuration(kv map[string]string, key string, def vtime.Duration) (vtime.Duration, error) {
	v, ok := kv[key]
	if !ok {
		return def, nil
	}
	return parseDuration(v)
}

func optInt(kv map[string]string, key string, def int) (int, error) {
	v, ok := kv[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("fault: bad %s %q", key, v)
	}
	return n, nil
}
