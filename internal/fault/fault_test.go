package fault

import (
	"reflect"
	"testing"

	"chameleon/internal/vtime"
)

func TestParsePlans(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  *Plan
		err   bool
	}{
		{name: "empty", input: "", want: &Plan{}},
		{name: "whitespace", input: "  \n ", want: &Plan{}},
		{
			name:  "crash",
			input: "crash rank=5 at marker=12",
			want:  &Plan{Crashes: []Crash{{Rank: 5, Marker: 12}}},
		},
		{
			name:  "crash without at",
			input: "crash rank=5 marker=12",
			want:  &Plan{Crashes: []Crash{{Rank: 5, Marker: 12}}},
		},
		{
			name:  "delay range jitter",
			input: "delay ranks=0-7 p=0.1 jitter=2ms-4ms",
			want: &Plan{Delays: []Delay{{
				Ranks: mustSet(t, "0-7"), P: 0.1,
				Min: 2 * vtime.Millisecond, Max: 4 * vtime.Millisecond,
			}}},
		},
		{
			name:  "delay fixed jitter defaults p=1",
			input: "delay rank=3 jitter=2ms",
			want: &Plan{Delays: []Delay{{
				Ranks: SingleRank(3), P: 1,
				Min: 2 * vtime.Millisecond, Max: 2 * vtime.Millisecond,
			}}},
		},
		{
			name:  "delay min max",
			input: "delay ranks=1,3,5-6 prob=0.5 min=10us max=1ms",
			want: &Plan{Delays: []Delay{{
				Ranks: mustSet(t, "1,3,5-6"), P: 0.5,
				Min: 10 * vtime.Microsecond, Max: 1 * vtime.Millisecond,
			}}},
		},
		{
			name:  "slow",
			input: "slow rank=3 factor=4x",
			want:  &Plan{Slows: []Slow{{Ranks: SingleRank(3), Factor: 4}}},
		},
		{
			name:  "slow without x",
			input: "slow ranks=0-1 factor=1.5",
			want:  &Plan{Slows: []Slow{{Ranks: mustSet(t, "0-1"), Factor: 1.5}}},
		},
		{
			name:  "multi directive",
			input: "crash rank=5 at marker=12; delay ranks=0-7 p=0.1 jitter=2ms\nslow rank=3 factor=4x",
			want: &Plan{
				Crashes: []Crash{{Rank: 5, Marker: 12}},
				Delays: []Delay{{Ranks: mustSet(t, "0-7"), P: 0.1,
					Min: 2 * vtime.Millisecond, Max: 2 * vtime.Millisecond}},
				Slows: []Slow{{Ranks: SingleRank(3), Factor: 4}},
			},
		},
		{
			name:  "json",
			input: `{"crash":[{"rank":5,"marker":12}],"delay":[{"ranks":"0-7","p":0.1,"jitter":"2ms-4ms"}],"slow":[{"ranks":3,"factor":4}]}`,
			want: &Plan{
				Crashes: []Crash{{Rank: 5, Marker: 12}},
				Delays: []Delay{{Ranks: mustSet(t, "0-7"), P: 0.1,
					Min: 2 * vtime.Millisecond, Max: 4 * vtime.Millisecond}},
				Slows: []Slow{{Ranks: SingleRank(3), Factor: 4}},
			},
		},
		{name: "unknown verb", input: "explode rank=1", err: true},
		{name: "bad pair", input: "crash rank 5", err: true},
		{name: "crash missing marker", input: "crash rank=5", err: true},
		{name: "crash unknown key", input: "crash rank=5 marker=2 boom=1", err: true},
		{name: "delay missing jitter", input: "delay ranks=0-7 p=0.1", err: true},
		{name: "delay bad duration", input: "delay ranks=0 jitter=2parsecs", err: true},
		{name: "delay inverted jitter", input: "delay ranks=0 jitter=4ms-2ms", err: true},
		{name: "slow missing factor", input: "slow rank=3", err: true},
		{name: "slow bad factor", input: "slow rank=3 factor=fast", err: true},
		{name: "bad rank set", input: "slow ranks=7-3 factor=2", err: true},
		{name: "bad json", input: "{not json", err: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Parse(tc.input)
			if tc.err {
				if err == nil {
					t.Fatalf("Parse(%q) = %+v, want error", tc.input, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.input, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Parse(%q)\n got %+v\nwant %+v", tc.input, got, tc.want)
			}
		})
	}
}

func mustSet(t *testing.T, s string) RankSet {
	t.Helper()
	set, err := ParseRankSet(s)
	if err != nil {
		t.Fatalf("ParseRankSet(%q): %v", s, err)
	}
	return set
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan string
		n    int
		err  bool
	}{
		{name: "ok", plan: "crash rank=5 marker=12", n: 16},
		{name: "rank 0 crash", plan: "crash rank=0 marker=12", n: 16, err: true},
		{name: "crash out of range", plan: "crash rank=16 marker=12", n: 16, err: true},
		{name: "marker zero", plan: "crash rank=5 marker=0", n: 16, err: true},
		{name: "duplicate crash", plan: "crash rank=5 marker=1; crash rank=5 marker=2", n: 16, err: true},
		{name: "everyone but rank 0 dies", plan: "crash rank=1 marker=1", n: 2},
		{name: "delay out of range", plan: "delay ranks=0-16 jitter=1ms", n: 16, err: true},
		{name: "delay bad p", plan: "delay ranks=0 p=1.5 jitter=1ms", n: 16, err: true},
		{name: "slow out of range", plan: "slow rank=16 factor=2", n: 16, err: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Parse(tc.plan)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			err = p.Validate(tc.n)
			if tc.err && err == nil {
				t.Errorf("Validate(%d) of %q: want error", tc.n, tc.plan)
			}
			if !tc.err && err != nil {
				t.Errorf("Validate(%d) of %q: %v", tc.n, tc.plan, err)
			}
		})
	}
}

func TestInjectorEmptyPlanIsNil(t *testing.T) {
	for _, p := range []*Plan{nil, {}} {
		in, err := NewInjector(p, 1, 16)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		if in != nil {
			t.Fatalf("empty plan must yield a nil injector, got %+v", in)
		}
	}
}

func TestInjectorMembership(t *testing.T) {
	p, err := Parse("crash rank=5 marker=10; crash rank=2 marker=3")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(p, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.CrashMarker(5); got != 10 {
		t.Errorf("CrashMarker(5) = %d, want 10", got)
	}
	if got := in.CrashMarker(0); got != -1 {
		t.Errorf("CrashMarker(0) = %d, want -1", got)
	}
	checks := []struct {
		m     int
		alive []int
		epoch int
	}{
		{m: 0, alive: []int{0, 1, 2, 3, 4, 5, 6, 7}, epoch: 0},
		{m: 2, alive: []int{0, 1, 2, 3, 4, 5, 6, 7}, epoch: 0},
		{m: 3, alive: []int{0, 1, 3, 4, 5, 6, 7}, epoch: 1},
		{m: 9, alive: []int{0, 1, 3, 4, 5, 6, 7}, epoch: 1},
		{m: 10, alive: []int{0, 1, 3, 4, 6, 7}, epoch: 2},
		{m: 99, alive: []int{0, 1, 3, 4, 6, 7}, epoch: 2},
	}
	for _, c := range checks {
		if got := in.AliveAfter(c.m); !reflect.DeepEqual(got, c.alive) {
			t.Errorf("AliveAfter(%d) = %v, want %v", c.m, got, c.alive)
		}
		if got := in.EpochAt(c.m); got != c.epoch {
			t.Errorf("EpochAt(%d) = %d, want %d", c.m, got, c.epoch)
		}
	}
}

func TestPerturbDeterministicPerSeed(t *testing.T) {
	plan, err := Parse("delay ranks=0-7 p=0.5 jitter=1ms-3ms; slow rank=3 factor=2x")
	if err != nil {
		t.Fatal(err)
	}
	draw := func(seed uint64) []vtime.Duration {
		in, err := NewInjector(plan, seed, 8)
		if err != nil {
			t.Fatal(err)
		}
		var out []vtime.Duration
		for rank := 0; rank < 8; rank++ {
			for i := 0; i < 64; i++ {
				out = append(out, in.PerturbCompute(rank, 0, vtime.Millisecond))
			}
		}
		return out
	}
	a, b := draw(7), draw(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different perturbation streams")
	}
	if c := draw(8); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical perturbation streams")
	}
	// The slow factor applies deterministically even when no delay fires.
	in, _ := NewInjector(plan, 7, 8)
	if got := in.PerturbCompute(3, 0, vtime.Millisecond); got < 2*vtime.Millisecond {
		t.Errorf("slow rank perturbation %v < 2ms floor", got)
	}
	// Statistically, about half the draws on a delayed rank must exceed
	// the nominal duration.
	fired := 0
	for _, d := range a[:64] { // rank 0, delay-only
		if d > vtime.Millisecond {
			fired++
		}
	}
	if fired < 16 || fired > 48 {
		t.Errorf("delay fired %d/64 times, want roughly half at p=0.5", fired)
	}
}
