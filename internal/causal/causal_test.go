package causal

import (
	"bytes"
	"strings"
	"testing"

	"chameleon/internal/obs"
)

// voteEdges models a 3-rank reduce chain where rank 2 is the root cause:
// its late send blocks rank 1, whose (consequently late) forward blocks
// rank 0.
func voteEdges() []obs.Edge {
	return []obs.Edge{
		{From: 2, To: 1, Seq: 1, SendVT: 100, ArriveVT: 110, RecvVT: 110, WaitVT: 80, Ctx: "vote", CtxSeq: 1},
		{From: 1, To: 0, Seq: 1, SendVT: 115, ArriveVT: 125, RecvVT: 125, WaitVT: 90, Ctx: "vote", CtxSeq: 1},
	}
}

// TestCriticalPathChain checks the walk-back: the path ends at the
// latest receive, follows each sender's own latest inbound dependency,
// and originates at the true straggler.
func TestCriticalPathChain(t *testing.T) {
	r := Analyze(voteEdges(), nil)
	if len(r.Collectives) != 1 {
		t.Fatalf("%d collectives, want 1", len(r.Collectives))
	}
	c := r.Collectives[0]
	if c.Ctx != "vote" || c.CtxSeq != 1 {
		t.Fatalf("collective identity = %s/%d", c.Ctx, c.CtxSeq)
	}
	if len(c.Path) != 2 || c.Origin != 2 || c.PathWait != 170 {
		t.Fatalf("path len=%d origin=%d wait=%d, want 2/2/170", len(c.Path), c.Origin, c.PathWait)
	}
	if c.Path[0].From != 2 || c.Path[1].To != 0 {
		t.Fatalf("path order wrong: %+v", c.Path)
	}
	if c.StartVT != 100 || c.EndVT != 125 {
		t.Fatalf("bounds [%d,%d], want [100,125]", c.StartVT, c.EndVT)
	}
}

// TestChainOriginAttribution is the straggler-plurality property: direct
// attribution splits blame between ranks 2 and 1 (the forwarding parent
// is blamed for rank 0's wait), while chain-origin attribution assigns
// all 170ns to rank 2.
func TestChainOriginAttribution(t *testing.T) {
	edges := append(voteEdges(),
		// A plain p2p edge: its sender is its own chain origin.
		obs.Edge{From: 0, To: 1, Seq: 2, SendVT: 130, ArriveVT: 140, RecvVT: 140, WaitVT: 5},
	)
	r := Analyze(edges, nil)
	if r.P2PEdges != 1 || r.P2PWait != 5 || r.TotalWait != 175 {
		t.Fatalf("p2p=%d p2pWait=%d total=%d", r.P2PEdges, r.P2PWait, r.TotalWait)
	}
	if len(r.Stragglers) == 0 || r.Stragglers[0].Rank != 2 {
		t.Fatalf("top straggler = %+v, want rank 2", r.Stragglers)
	}
	top := r.Stragglers[0]
	if top.CausedWait != 170 {
		t.Fatalf("rank 2 caused = %d, want 170 (transitive)", top.CausedWait)
	}
	if top.DirectWait != 80 {
		t.Fatalf("rank 2 direct = %d, want 80 (only its own edge)", top.DirectWait)
	}
	if top.Collectives != 1 {
		t.Fatalf("rank 2 leads %d critical paths, want 1", top.Collectives)
	}
	if r.WaitByCtx["vote"] != 170 || r.WaitByCtx["p2p"] != 5 {
		t.Fatalf("WaitByCtx = %v", r.WaitByCtx)
	}
}

// TestWindowPhaseAttribution maps collectives onto the journal's
// transition boundaries by start time and aggregates per state.
func TestWindowPhaseAttribution(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.KindTransition, Rank: 0, VT: 120, Marker: 1, To: "AT"},
		{Kind: obs.KindTransition, Rank: 0, VT: 300, Marker: 2, To: "L"},
	}
	r := Analyze(voteEdges(), events)
	c := r.Collectives[0]
	if c.Marker != 1 || c.State != "AT" {
		t.Fatalf("collective placed at marker %d state %s, want 1/AT", c.Marker, c.State)
	}
	if len(r.Windows) != 1 || r.Windows[0].Marker != 1 || r.Windows[0].Wait != 170 {
		t.Fatalf("windows = %+v", r.Windows)
	}
	if r.Windows[0].TopRank != 2 || r.Windows[0].TopCaused != 170 {
		t.Fatalf("window top = rank %d (%d)", r.Windows[0].TopRank, r.Windows[0].TopCaused)
	}
	if len(r.Phases) != 1 || r.Phases[0].State != "AT" || r.Phases[0].TopRank != 2 {
		t.Fatalf("phases = %+v", r.Phases)
	}
}

// TestReportText smoke-tests the renderer's section set and ordering
// determinism (two runs must byte-match).
func TestReportText(t *testing.T) {
	events := []obs.Event{{Kind: obs.KindTransition, Rank: 0, VT: 120, Marker: 1, To: "AT"}}
	var a, b bytes.Buffer
	if err := Analyze(voteEdges(), events).WriteText(&a, 5); err != nil {
		t.Fatal(err)
	}
	if err := Analyze(voteEdges(), events).WriteText(&b, 5); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("report text is not deterministic")
	}
	for _, want := range []string{
		"top straggler ranks", "wait by collective context", "wait by phase", "vote",
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("report missing %q:\n%s", want, a.String())
		}
	}
}

// TestReadChromeTrace round-trips a timeline+causal store through the
// writer and back: span categories, flow counts, and dropped metadata.
func TestReadChromeTrace(t *testing.T) {
	tl := obs.NewTimeline(2)
	tl.Add(0, "compute", obs.CatCompute, 0, 1500)    // 1.5µs: exercises decimal ts
	tl.Add(1, "vote", obs.CatMarker, 100, 2100)      // 2µs
	tl.Add(1, "compute", obs.CatCompute, 2100, 2601) // 501ns
	c := obs.NewCausal(2)
	c.Record(obs.Edge{From: 0, To: 1, Seq: 1, SendVT: 10, ArriveVT: 50, RecvVT: 60, WaitVT: 40, Ctx: "vote"})

	var buf bytes.Buffer
	if err := tl.WriteChromeTraceFlows(&buf, c); err != nil {
		t.Fatal(err)
	}
	ts, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Spans != 3 || ts.Flows != 2 {
		t.Fatalf("spans=%d flows=%d, want 3/2", ts.Spans, ts.Flows)
	}
	if got := ts.CatNs[obs.CatCompute]; got != 2001 {
		t.Fatalf("compute ns = %d, want 2001 (decimal µs must round-trip)", got)
	}
	if got := ts.CatNs[obs.CatMarker]; got != 2000 {
		t.Fatalf("marker ns = %d, want 2000", got)
	}
	if ts.SpansDropped != 0 || ts.EdgesDropped != 0 {
		t.Fatalf("dropped = %d/%d, want 0/0", ts.SpansDropped, ts.EdgesDropped)
	}
}
