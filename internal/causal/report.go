package causal

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// WriteText renders the report as the human-readable tables chamtop
// -critical prints: the wait-by-context breakdown, the top-N straggler
// ranks under chain-origin attribution, per-phase and per-window tables.
// All sections are deterministically ordered so the output is
// golden-testable.
func (r *Report) WriteText(w io.Writer, topN int) error {
	if topN <= 0 {
		topN = 10
	}
	fmt.Fprintf(w, "causal: %d edges, %d collective instances, %d p2p edges, total wait %s\n\n",
		r.EdgeCount, len(r.Collectives), r.P2PEdges, vt(r.TotalWait))

	if len(r.WaitByCtx) > 0 && r.TotalWait > 0 {
		type ctxRow struct {
			ctx  string
			wait int64
		}
		var rows []ctxRow
		for ctx, wait := range r.WaitByCtx {
			rows = append(rows, ctxRow{ctx, wait})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].wait != rows[j].wait {
				return rows[i].wait > rows[j].wait
			}
			return rows[i].ctx < rows[j].ctx
		})
		fmt.Fprintln(w, "wait by collective context")
		tw := tab(w)
		fmt.Fprintln(tw, "  context\twait\tshare")
		for _, row := range rows {
			fmt.Fprintf(tw, "  %s\t%s\t%s\n", row.ctx, vt(row.wait), pct(row.wait, r.TotalWait))
		}
		tw.Flush()
		fmt.Fprintln(w)
	}

	if len(r.Stragglers) > 0 {
		fmt.Fprintln(w, "top straggler ranks (chain-origin attribution)")
		tw := tab(w)
		fmt.Fprintln(tw, "  rank\tcaused-wait\tshare\tdirect-wait\tcrit-paths")
		for i, s := range r.Stragglers {
			if i >= topN {
				break
			}
			fmt.Fprintf(tw, "  %d\t%s\t%s\t%s\t%d\n",
				s.Rank, vt(s.CausedWait), pct(s.CausedWait, r.TotalWait), vt(s.DirectWait), s.Collectives)
		}
		tw.Flush()
		fmt.Fprintln(w)
	}

	if len(r.Phases) > 0 {
		fmt.Fprintln(w, "wait by phase (transition-graph state)")
		tw := tab(w)
		fmt.Fprintln(tw, "  state\tcollectives\twait\tshare\ttop-rank\ttop-caused")
		for _, p := range r.Phases {
			fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\t%d\t%s\n",
				p.State, p.Collectives, vt(p.Wait), pct(p.Wait, r.TotalWait), p.TopRank, vt(p.TopCaused))
		}
		tw.Flush()
		fmt.Fprintln(w)
	}

	if len(r.Windows) > 0 {
		// Windows are numerous; show the heaviest few by wait.
		idx := make([]int, len(r.Windows))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool {
			a, b := &r.Windows[idx[i]], &r.Windows[idx[j]]
			if a.Wait != b.Wait {
				return a.Wait > b.Wait
			}
			return a.Marker < b.Marker
		})
		if len(idx) > topN {
			idx = idx[:topN]
		}
		fmt.Fprintf(w, "heaviest marker windows (top %d of %d)\n", len(idx), len(r.Windows))
		tw := tab(w)
		fmt.Fprintln(tw, "  marker\tstate\twait\ttop-rank\ttop-caused")
		for _, i := range idx {
			win := &r.Windows[i]
			fmt.Fprintf(tw, "  %d\t%s\t%s\t%d\t%s\n",
				win.Marker, win.State, vt(win.Wait), win.TopRank, vt(win.TopCaused))
		}
		tw.Flush()
		fmt.Fprintln(w)
	}

	return nil
}

// WriteSpanBreakdown renders the run-level compute/blocked/overhead
// split from a Chrome-trace summary alongside the edge-based report
// (the "critical-path breakdown" view: where virtual time went).
func WriteSpanBreakdown(w io.Writer, ts *TraceSummary) {
	if ts == nil || len(ts.CatNs) == 0 {
		return
	}
	var total int64
	type catRow struct {
		cat string
		ns  int64
	}
	var rows []catRow
	for cat, ns := range ts.CatNs {
		rows = append(rows, catRow{cat, ns})
		total += ns
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ns != rows[j].ns {
			return rows[i].ns > rows[j].ns
		}
		return rows[i].cat < rows[j].cat
	})
	fmt.Fprintf(w, "span breakdown (%d spans, %d flow links)\n", ts.Spans, ts.Flows/2)
	tw := tab(w)
	fmt.Fprintln(tw, "  category\tvtime\tshare")
	for _, row := range rows {
		fmt.Fprintf(tw, "  %s\t%s\t%s\n", row.cat, vt(row.ns), pct(row.ns, total))
	}
	tw.Flush()
	if ts.SpansDropped > 0 || ts.EdgesDropped > 0 {
		fmt.Fprintf(w, "  WARNING: capture truncated: %d spans, %d edges dropped at cap\n",
			ts.SpansDropped, ts.EdgesDropped)
	}
	fmt.Fprintln(w)
}

func tab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// vt renders virtual nanoseconds as a duration.
func vt(ns int64) string { return time.Duration(ns).String() }

// pct renders an integer percentage share.
func pct(part, whole int64) string {
	if whole <= 0 {
		return "0%"
	}
	return fmt.Sprintf("%d%%", part*100/whole)
}
