package causal

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceSummary condenses a Chrome trace-event file (as written by
// obs.Timeline.WriteChromeTraceFlows) back into analysis inputs: total
// virtual time per span category, span/flow counts, and the dropped
// counters the writer embeds as metadata events.
type TraceSummary struct {
	// CatNs sums "X" span durations (ns) per category across ranks.
	CatNs map[string]int64
	// Spans counts "X" events; Flows counts "s"+"f" flow events.
	Spans int
	Flows int
	// SpansDropped/EdgesDropped are the capture-cap counters from the
	// chameleon_*_dropped metadata events.
	SpansDropped uint64
	EdgesDropped uint64
}

// chromeEvent is the subset of the trace-event schema the reader needs.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Dur  json.Number     `json:"dur"`
	Args json.RawMessage `json:"args"`
}

// ReadChromeTrace parses a trace-event JSON object form stream.
func ReadChromeTrace(r io.Reader) (*TraceSummary, error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("causal: chrome trace: %w", err)
	}
	ts := &TraceSummary{CatNs: make(map[string]int64)}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			ts.Spans++
			ts.CatNs[ev.Cat] += usecToNs(ev.Dur)
		case "s", "f":
			ts.Flows++
		case "M":
			var args struct {
				Dropped uint64 `json:"dropped"`
			}
			switch ev.Name {
			case "chameleon_spans_dropped":
				if json.Unmarshal(ev.Args, &args) == nil {
					ts.SpansDropped = args.Dropped
				}
			case "chameleon_edges_dropped":
				if json.Unmarshal(ev.Args, &args) == nil {
					ts.EdgesDropped = args.Dropped
				}
			}
		}
	}
	return ts, nil
}

// usecToNs converts the writer's decimal-microsecond encoding ("12.345")
// back to integer nanoseconds without float rounding.
func usecToNs(n json.Number) int64 {
	s := n.String()
	var whole, frac int64
	var neg bool
	i := 0
	if i < len(s) && s[i] == '-' {
		neg = true
		i++
	}
	for ; i < len(s) && s[i] != '.'; i++ {
		whole = whole*10 + int64(s[i]-'0')
	}
	if i < len(s) && s[i] == '.' {
		i++
		scale := int64(100)
		for ; i < len(s) && scale > 0; i++ {
			frac += int64(s[i]-'0') * scale
			scale /= 10
		}
	}
	ns := whole*1000 + frac
	if neg {
		return -ns
	}
	return ns
}
