// Package causal is the offline analysis layer over the causal edge DAG
// the MPI runtime records (see internal/obs.Causal): it reconstructs
// named collective instances from the edges' piggybacked contexts,
// extracts each instance's critical path — the chain of messages that
// determined its completion virtual time — and attributes receiver wait
// time to the ranks that caused it, per marker window and per
// transition-graph phase (AT/C/L/F).
//
// Two attribution views are computed. DirectWait blames the immediate
// sender of every late message; in a reduction tree that spreads an
// originating delay across all interior nodes (rank 5's parent forwards
// late, so the grandparent blames the parent). CausedWait walks each
// late edge back through the sender's own latest inbound dependency to
// the chain origin, so the rank at the root of the delay chain collects
// the blame — the straggler the report ranks by.
package causal

import (
	"sort"

	"chameleon/internal/obs"
)

// Collective is one reconstructed collective instance: every edge whose
// piggybacked context named it, in store order.
type Collective struct {
	// Ctx/CtxSeq name the instance ("vote" 12, "merge:final" 3, ...).
	Ctx    string
	CtxSeq int
	Edges  []obs.Edge
	// StartVT/EndVT bound the instance: earliest send, latest receive.
	StartVT int64
	EndVT   int64
	// Wait sums receiver blocked time over all edges.
	Wait int64
	// Path is the critical path in send order: the dependency chain
	// ending at the edge with the latest RecvVT. Origin is the chain's
	// first sender — the rank whose lateness the whole chain forwarded —
	// and PathWait sums blocked time along the chain.
	Path     []obs.Edge
	Origin   int
	PathWait int64
	// Marker/State place the instance in the run: the engaged marker
	// window it fell in and the transition-graph state that window
	// produced ("" when no journal was given).
	Marker int
	State  string
}

// Name renders the instance identity.
func (c *Collective) Name() string { return c.Ctx }

// Straggler aggregates blame for one rank.
type Straggler struct {
	Rank int
	// CausedWait is chain-origin (transitive) attribution: blocked time
	// on any rank whose delay chain originates here.
	CausedWait int64
	// DirectWait is immediate-sender attribution.
	DirectWait int64
	// Collectives counts instances whose critical path originates here.
	Collectives int
}

// PhaseStat aggregates one transition-graph state.
type PhaseStat struct {
	State       string
	Collectives int
	Wait        int64 // total receiver wait in the phase
	CausedBy    map[int]int64
	TopRank     int
	TopCaused   int64
}

// WindowStat aggregates one engaged marker window.
type WindowStat struct {
	Marker    int
	State     string
	EndVT     int64
	Wait      int64
	TopRank   int
	TopCaused int64
}

// Report is the full analysis result.
type Report struct {
	Ranks       int
	EdgeCount   int
	Collectives []Collective
	// P2PEdges are plain point-to-point edges (no collective context).
	P2PEdges int
	P2PWait  int64
	// TotalWait sums receiver blocked time over every edge.
	TotalWait int64
	// Stragglers is sorted by CausedWait descending, ties on rank.
	Stragglers []Straggler
	// WaitByCtx sums wait per context name ("vote", "marker", ...).
	WaitByCtx map[string]int64
	Phases    []PhaseStat
	Windows   []WindowStat
}

type groupKey struct {
	ctx string
	seq int
}

// Analyze builds a report from an edge set and (optionally) the run's
// journal events; events carry the rank-0 transition history that maps
// virtual time to marker windows and phases. A nil events slice skips
// window/phase attribution.
func Analyze(edges []obs.Edge, events []obs.Event) *Report {
	r := &Report{EdgeCount: len(edges), WaitByCtx: make(map[string]int64)}

	groups := make(map[groupKey][]obs.Edge)
	var keys []groupKey
	for _, e := range edges {
		if e.From >= r.Ranks {
			r.Ranks = e.From + 1
		}
		if e.To >= r.Ranks {
			r.Ranks = e.To + 1
		}
		r.TotalWait += e.WaitVT
		if e.Ctx == "" {
			r.P2PEdges++
			r.P2PWait += e.WaitVT
			r.WaitByCtx["p2p"] += e.WaitVT
			continue
		}
		r.WaitByCtx[e.Ctx] += e.WaitVT
		k := groupKey{e.Ctx, e.CtxSeq}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], e)
	}

	caused := make(map[int]int64)
	direct := make(map[int]int64)
	led := make(map[int]int)
	for _, e := range edges {
		direct[e.From] += e.WaitVT
	}

	for _, k := range keys {
		g := groups[k]
		c := Collective{Ctx: k.ctx, CtxSeq: k.seq, Edges: g, Marker: -1}
		c.StartVT, c.EndVT = g[0].SendVT, g[0].RecvVT
		for _, e := range g {
			if e.SendVT < c.StartVT {
				c.StartVT = e.SendVT
			}
			if e.RecvVT > c.EndVT {
				c.EndVT = e.RecvVT
			}
			c.Wait += e.WaitVT
		}
		c.Path, c.Origin, c.PathWait = criticalPath(g)
		if c.Wait > 0 {
			led[c.Origin]++
		}
		attributeChains(g, caused)
		r.Collectives = append(r.Collectives, c)
	}
	// Chain-origin attribution for p2p edges: the sender is the origin
	// (no piggybacked dependency structure to walk within "").
	for _, e := range edges {
		if e.Ctx == "" {
			caused[e.From] += e.WaitVT
		}
	}
	sort.Slice(r.Collectives, func(i, j int) bool {
		a, b := &r.Collectives[i], &r.Collectives[j]
		if a.StartVT != b.StartVT {
			return a.StartVT < b.StartVT
		}
		return a.EndVT < b.EndVT
	})

	for rank := 0; rank < r.Ranks; rank++ {
		if caused[rank] == 0 && direct[rank] == 0 && led[rank] == 0 {
			continue
		}
		r.Stragglers = append(r.Stragglers, Straggler{
			Rank: rank, CausedWait: caused[rank], DirectWait: direct[rank],
			Collectives: led[rank],
		})
	}
	sort.Slice(r.Stragglers, func(i, j int) bool {
		a, b := &r.Stragglers[i], &r.Stragglers[j]
		if a.CausedWait != b.CausedWait {
			return a.CausedWait > b.CausedWait
		}
		return a.Rank < b.Rank
	})

	if events != nil {
		r.attachWindows(events)
	}
	return r
}

// criticalPath extracts the dependency chain that determined the
// group's completion time. Starting from the edge with the latest
// RecvVT, each step finds the sender's own latest inbound edge that
// completed no later than the send left — the message the sender was
// (transitively) waiting on. The walk continues only through edges the
// intermediate rank actually blocked on (WaitVT > 0): a predecessor that
// was already buffered when asked for did not pace the sender — the
// sender's own computation did, making it the chain origin (that is how
// a slow rank, whose inbound messages all arrive early, terminates every
// chain it causes). The returned path is in send order; origin is the
// first sender on it.
func criticalPath(g []obs.Edge) (path []obs.Edge, origin int, wait int64) {
	if len(g) == 0 {
		return nil, -1, 0
	}
	// Index inbound edges per rank, ordered by RecvVT, for the
	// predecessor search.
	inbound := make(map[int][]obs.Edge)
	for _, e := range g {
		inbound[e.To] = append(inbound[e.To], e)
	}
	for _, row := range inbound {
		sort.Slice(row, func(i, j int) bool { return row[i].RecvVT < row[j].RecvVT })
	}
	last := g[0]
	for _, e := range g[1:] {
		if e.RecvVT > last.RecvVT {
			last = e
		}
	}
	rev := []obs.Edge{last}
	cur := last
	for len(rev) <= len(g) {
		pred, ok := predecessor(inbound[cur.From], cur.SendVT)
		if !ok {
			break
		}
		rev = append(rev, pred)
		cur = pred
	}
	path = make([]obs.Edge, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
		wait += rev[i].WaitVT
	}
	return path, path[0].From, wait
}

// predecessor finds the latest edge in the RecvVT-sorted row that
// completed at or before vt and that the receiver actually blocked on.
// Zero-wait receives are pass-throughs — a message already buffered when
// asked for did not shift the receiver's timeline, so it cannot carry a
// delay chain; the blocked receive just before it can (in a binomial
// reduce the parent's last receive is often an early child's buffered
// message, while the straggling child's edge sits one slot earlier).
func predecessor(row []obs.Edge, vt int64) (obs.Edge, bool) {
	i := sort.Search(len(row), func(i int) bool { return row[i].RecvVT > vt })
	for i--; i >= 0; i-- {
		if row[i].WaitVT > 0 {
			return row[i], true
		}
	}
	return obs.Edge{}, false
}

// attributeChains adds every late edge's blocked time to its chain
// origin: the rank reached by walking the edge's sender back through its
// own latest inbound dependencies, stopping (as in criticalPath) at the
// first sender that was not itself blocked — the rank whose own pace set
// the chain in motion.
func attributeChains(g []obs.Edge, caused map[int]int64) {
	inbound := make(map[int][]obs.Edge)
	for _, e := range g {
		inbound[e.To] = append(inbound[e.To], e)
	}
	for _, row := range inbound {
		sort.Slice(row, func(i, j int) bool { return row[i].RecvVT < row[j].RecvVT })
	}
	for _, e := range g {
		if e.WaitVT == 0 {
			continue
		}
		cur, hops := e, 0
		for hops <= len(g) {
			pred, ok := predecessor(inbound[cur.From], cur.SendVT)
			if !ok {
				break
			}
			cur = pred
			hops++
		}
		caused[cur.From] += e.WaitVT
	}
}

// attachWindows maps collectives to engaged marker windows using the
// journal's rank-0 transition events: window i covers virtual time up to
// transition i's emit stamp and produced state To. Collectives are
// placed by StartVT (a collective begun inside a window may complete
// after the window's transition is stamped — leaf receives of the
// closing broadcast land later).
func (r *Report) attachWindows(events []obs.Event) {
	type boundary struct {
		vt     int64
		marker int
		state  string
	}
	var bounds []boundary
	for _, ev := range events {
		if ev.Kind == obs.KindTransition {
			bounds = append(bounds, boundary{ev.VT, ev.Marker, ev.To})
		}
	}
	if len(bounds) == 0 {
		return
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].vt < bounds[j].vt })

	winIdx := make(map[int]int) // marker -> Windows index
	phaseIdx := make(map[string]int)
	winCaused := make(map[int]map[int]int64) // Windows index -> rank -> wait
	for i := range r.Collectives {
		c := &r.Collectives[i]
		bi := sort.Search(len(bounds), func(j int) bool { return bounds[j].vt >= c.StartVT })
		if bi == len(bounds) {
			bi = len(bounds) - 1 // after the last transition: fold into it
		}
		b := bounds[bi]
		c.Marker, c.State = b.marker, b.state

		wi, ok := winIdx[b.marker]
		if !ok {
			wi = len(r.Windows)
			winIdx[b.marker] = wi
			r.Windows = append(r.Windows, WindowStat{Marker: b.marker, State: b.state, EndVT: b.vt})
			winCaused[wi] = make(map[int]int64)
		}
		pi, ok := phaseIdx[b.state]
		if !ok {
			pi = len(r.Phases)
			phaseIdx[b.state] = pi
			r.Phases = append(r.Phases, PhaseStat{State: b.state, CausedBy: make(map[int]int64)})
		}
		r.Windows[wi].Wait += c.Wait
		r.Phases[pi].Collectives++
		r.Phases[pi].Wait += c.Wait

		// Re-attribute this instance's chains into the window/phase
		// accumulators.
		local := make(map[int]int64)
		attributeChains(c.Edges, local)
		for rank, w := range local {
			r.Phases[pi].CausedBy[rank] += w
			winCaused[wi][rank] += w
		}
	}
	for wi := range r.Windows {
		w := &r.Windows[wi]
		w.TopRank = -1
		for rank, cw := range winCaused[wi] {
			if cw > w.TopCaused || (cw == w.TopCaused && w.TopRank >= 0 && rank < w.TopRank) {
				w.TopCaused, w.TopRank = cw, rank
			}
		}
	}
	for i := range r.Phases {
		p := &r.Phases[i]
		p.TopRank = -1
		for rank, w := range p.CausedBy {
			if w > p.TopCaused || (w == p.TopCaused && p.TopRank >= 0 && rank < p.TopRank) {
				p.TopCaused, p.TopRank = w, rank
			}
		}
	}
	sort.Slice(r.Windows, func(i, j int) bool { return r.Windows[i].Marker < r.Windows[j].Marker })
	sort.Slice(r.Phases, func(i, j int) bool { return r.Phases[i].Wait > r.Phases[j].Wait })
}
