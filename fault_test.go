package chameleon_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"chameleon"
	"chameleon/internal/analysis"
	"chameleon/internal/obs"
)

// runFaulted traces a benchmark under Chameleon with the given fault
// plan (empty = no injection) and returns the output plus the journal.
func runFaulted(t testing.TB, bench, plan string, seed uint64, p int) (*chameleon.Output, []byte) {
	t.Helper()
	parsed, err := chameleon.ParseFaultPlan(plan)
	if err != nil {
		t.Fatalf("parse plan %q: %v", plan, err)
	}
	inj, err := chameleon.NewFaultInjector(parsed, seed, p)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	var journal bytes.Buffer
	o := chameleon.NewObserver(chameleon.ObsOptions{Journal: &journal})
	out, err := chameleon.RunBenchmark(bench, "A", p, chameleon.TracerChameleon,
		&chameleon.Config{Obs: o, Fault: inj})
	if err != nil {
		t.Fatalf("run %s with %q: %v", bench, plan, err)
	}
	if err := o.Journal.Err(); err != nil {
		t.Fatalf("journal: %v", err)
	}
	return out, journal.Bytes()
}

// traceJSON serializes a trace for byte comparison.
func traceJSON(t testing.TB, out *chameleon.Output) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := out.Trace.Write(&buf); err != nil {
		t.Fatalf("serialize trace: %v", err)
	}
	return buf.Bytes()
}

// sortedJournal canonicalizes a journal: rank goroutines race to the
// shared writer, so line order varies run to run while the line *set*
// of a deterministic run does not.
func sortedJournal(raw []byte) string {
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// journalKinds counts journal events by kind.
func journalKinds(t testing.TB, raw []byte) map[string]int {
	t.Helper()
	events, err := chameleon.ReadJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("parse journal: %v", err)
	}
	kinds := map[string]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	return kinds
}

// assertSurvivorCoverage checks that the merged trace validates and
// contains events for every surviving rank (and none for the departed).
func assertSurvivorCoverage(t testing.TB, out *chameleon.Output) {
	t.Helper()
	if err := out.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	dead := map[int]bool{}
	for _, r := range out.Departed {
		dead[r] = true
	}
	for _, v := range analysis.Volumes(out.Trace) {
		events := v.SendEvents + v.RecvEvents + v.CollEvents
		if !dead[v.Rank] && events == 0 {
			t.Errorf("surviving rank %d has no events in the trace", v.Rank)
		}
	}
}

// TestZeroFaultIdentity: an empty plan compiles to a nil injector, and a
// run through the fault-enabled facade is identical — makespan, trace
// bytes, retired list — to a run with no fault configuration at all.
func TestZeroFaultIdentity(t *testing.T) {
	plan, err := chameleon.ParseFaultPlan("")
	if err != nil {
		t.Fatalf("parse empty plan: %v", err)
	}
	inj, err := chameleon.NewFaultInjector(plan, 1, 16)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	if inj != nil {
		t.Fatalf("empty plan must compile to a nil injector")
	}

	base, err := chameleon.RunBenchmark("PHASE", "A", 16, chameleon.TracerChameleon, nil)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	faulted, _ := runFaulted(t, "PHASE", "", 1, 16)
	if base.Time != faulted.Time {
		t.Errorf("makespan changed under a nil injector: %v vs %v", base.Time, faulted.Time)
	}
	if len(faulted.Departed) != 0 || len(faulted.Trace.Retired) != 0 {
		t.Errorf("zero-fault run departed=%v retired=%v", faulted.Departed, faulted.Trace.Retired)
	}
	if !bytes.Equal(traceJSON(t, base), traceJSON(t, faulted)) {
		t.Errorf("trace bytes changed under a nil injector")
	}
}

// TestFaultDeterminism: the same plan and seed reproduce the run exactly
// (makespan, trace bytes, journal line set); a different seed perturbs
// differently.
func TestFaultDeterminism(t *testing.T) {
	const plan = "crash rank=1 at marker=10; delay ranks=2-7 p=0.3 jitter=2ms; slow rank=3 factor=2x"
	a, aj := runFaulted(t, "PHASE", plan, 7, 16)
	b, bj := runFaulted(t, "PHASE", plan, 7, 16)
	if a.Time != b.Time {
		t.Errorf("makespan not deterministic: %v vs %v", a.Time, b.Time)
	}
	if !bytes.Equal(traceJSON(t, a), traceJSON(t, b)) {
		t.Errorf("trace bytes not deterministic")
	}
	if sortedJournal(aj) != sortedJournal(bj) {
		t.Errorf("journal event set not deterministic")
	}

	c, _ := runFaulted(t, "PHASE", plan, 9, 16)
	if a.Time == c.Time {
		t.Errorf("seed 7 and seed 9 produced the same makespan %v; jitter is not seeded", a.Time)
	}
}

// TestPhaseLeadCrashFailover is the acceptance scenario: a PHASE run
// whose lead rank 1 crashes at a state-L marker completes, journals
// exactly one lead_failover, and its trace validates and covers every
// surviving rank.
func TestPhaseLeadCrashFailover(t *testing.T) {
	out, journal := runFaulted(t, "PHASE", "crash rank=1 at marker=10", 1, 16)

	if want := []int{1}; len(out.Departed) != 1 || out.Departed[0] != 1 {
		t.Fatalf("departed = %v, want %v", out.Departed, want)
	}
	if len(out.Trace.Retired) != 1 || out.Trace.Retired[0] != 1 {
		t.Fatalf("trace retired = %v, want [1]", out.Trace.Retired)
	}
	kinds := journalKinds(t, journal)
	if kinds[obs.KindFailover] != 1 {
		t.Errorf("lead_failover events = %d, want 1", kinds[obs.KindFailover])
	}
	if kinds[obs.KindFault] != 1 {
		t.Errorf("fault events = %d, want 1", kinds[obs.KindFault])
	}
	assertSurvivorCoverage(t, out)
	for _, l := range out.Leads {
		if l == 1 {
			t.Errorf("dead rank 1 still in lead set %v", out.Leads)
		}
	}
}

// TestReplayFaultedCollectiveTrace replays a crash trace end to end. A
// collective-only workload is used: the crash-lost windows then contain
// no point-to-point events whose surviving partners would wait forever
// (the documented replay limit for crash traces, see docs/FAULTS.md),
// and the partially-covered collective nodes exercise the replayer's
// group-collective path — the retired rank replays its pre-crash
// full-world events and finishes early.
func TestReplayFaultedCollectiveTrace(t *testing.T) {
	plan, err := chameleon.ParseFaultPlan("crash rank=3 at marker=10")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	inj, err := chameleon.NewFaultInjector(plan, 1, 16)
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	out, err := chameleon.Run(chameleon.Config{
		P: 16, Tracer: chameleon.TracerChameleon, K: 2, Fault: inj,
	}, func(p *chameleon.Proc) {
		for it := 0; it < 30; it++ {
			p.Compute(chameleon.Millisecond)
			p.ShrunkWorld().Allreduce(8, uint64(p.Rank()), chameleon.OpSum)
			chameleon.Marker(p)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(out.Departed) != 1 || out.Departed[0] != 3 {
		t.Fatalf("departed = %v, want [3]", out.Departed)
	}
	if err := out.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	rep, err := chameleon.Replay(out.Trace, chameleon.DefaultModel())
	if err != nil {
		t.Fatalf("replay of faulted collective trace: %v", err)
	}
	if rep.Time <= 0 {
		t.Errorf("replay makespan = %v", rep.Time)
	}
}

// TestStencilLeadPromotion exercises the promotion path proper: on the
// 4x4 STENCIL grid the interior cluster {5,6,9,10} is led by rank 5;
// crashing it must promote a surviving member (rank 6, the lowest
// survivor under the deterministic re-selection) rather than lose the
// cluster.
func TestStencilLeadPromotion(t *testing.T) {
	out, journal := runFaulted(t, "STENCIL", "crash rank=5 at marker=10", 1, 16)

	events, err := chameleon.ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatalf("parse journal: %v", err)
	}
	var failovers []obs.Event
	for _, ev := range events {
		if ev.Kind == obs.KindFailover {
			failovers = append(failovers, ev)
		}
	}
	if len(failovers) != 1 {
		t.Fatalf("lead_failover events = %d, want 1", len(failovers))
	}
	fo := failovers[0]
	if fo.Note != "promoted" {
		t.Fatalf("failover note = %q, want \"promoted\" (event: %+v)", fo.Note, fo)
	}
	if len(fo.Leads) != 2 || fo.Leads[0] != 5 || fo.Leads[1] != 6 {
		t.Errorf("failover leads = %v, want [5 6] (old, promoted)", fo.Leads)
	}
	promoted := false
	for _, l := range out.Leads {
		if l == 6 {
			promoted = true
		}
		if l == 5 {
			t.Errorf("dead rank 5 still in lead set %v", out.Leads)
		}
	}
	if !promoted {
		t.Errorf("promoted rank 6 not in final lead set %v", out.Leads)
	}
	assertSurvivorCoverage(t, out)
}

// TestConcurrentCrashDuringClustering crashes two ranks at the same
// early marker — inside the Clustering state, while signatures are
// being gathered — to exercise departure handling concurrent with the
// clustering collectives (run under -race by make test-race).
func TestConcurrentCrashDuringClustering(t *testing.T) {
	out, journal := runFaulted(t, "PHASE", "crash rank=4 at marker=2; crash rank=5 at marker=2", 1, 16)
	if len(out.Departed) != 2 {
		t.Fatalf("departed = %v, want [4 5]", out.Departed)
	}
	if kinds := journalKinds(t, journal); kinds[obs.KindFault] != 2 {
		t.Errorf("fault events = %d, want 2", kinds[obs.KindFault])
	}
	assertSurvivorCoverage(t, out)
}

// TestCrashSweep crashes one rank at every marker of the PHASE and
// STENCIL examples: whatever state the run is in when the crash lands
// (All-Tracing, Clustering, Lead, a flush marker), the run must
// complete with a valid trace covering all survivors. Short mode
// strides the sweep.
func TestCrashSweep(t *testing.T) {
	stride := 1
	if testing.Short() {
		stride = 13
	}
	cases := []struct {
		bench   string
		rank    int
		markers int
	}{
		{"PHASE", 3, 160},
		{"STENCIL", 5, 60},
	}
	for _, tc := range cases {
		t.Run(tc.bench, func(t *testing.T) {
			for m := 1; m <= tc.markers; m += stride {
				plan := fmt.Sprintf("crash rank=%d at marker=%d", tc.rank, m)
				out, _ := runFaulted(t, tc.bench, plan, 1, 16)
				if len(out.Departed) != 1 || out.Departed[0] != tc.rank {
					t.Fatalf("marker %d: departed = %v, want [%d]", m, out.Departed, tc.rank)
				}
				if err := out.Trace.Validate(); err != nil {
					t.Fatalf("marker %d: trace invalid: %v", m, err)
				}
				assertSurvivorCoverage(t, out)
			}
		})
	}
}

// failoverSequence compresses rank 0's journal stream — transitions,
// flushes, failovers — into the run-length token form of the golden
// file. Only rank-0 events are used: their relative order is rank 0's
// program order and therefore deterministic.
func failoverSequence(events []obs.Event) string {
	var parts []string
	token, n := "", 0
	flush := func() {
		if n == 0 {
			return
		}
		if n == 1 {
			parts = append(parts, token)
		} else {
			parts = append(parts, fmt.Sprintf("%s*%d", token, n))
		}
	}
	for _, ev := range events {
		var tok string
		switch ev.Kind {
		case obs.KindTransition:
			tok = ev.To
		case obs.KindFlush:
			tok = "flush:" + ev.Note
		case obs.KindFailover:
			tok = "failover:" + ev.Note
		default:
			continue
		}
		if tok == token {
			n++
			continue
		}
		flush()
		token, n = tok, 1
	}
	flush()
	return strings.Join(parts, " ")
}

// TestJournalGoldenLeadFailover locks the journal event sequences of
// one-lead-crash runs against golden files, one per failover flavor.
// PHASE loses a singleton cluster (its lead had no surviving members,
// so nothing re-traces); STENCIL promotes a survivor, whose sequence is
// the full vote -> failover -> one re-traced window -> failover flush.
func TestJournalGoldenLeadFailover(t *testing.T) {
	cases := []struct {
		bench, plan, golden, flavor string
	}{
		{"PHASE", "crash rank=1 at marker=10", "testdata/phase_failover.golden", "cluster-lost"},
		{"STENCIL", "crash rank=5 at marker=10", "testdata/stencil_failover.golden", "promoted"},
	}
	for _, tc := range cases {
		t.Run(tc.bench, func(t *testing.T) {
			_, journal := runFaulted(t, tc.bench, tc.plan, 1, 16)
			events, err := chameleon.ReadJournal(bytes.NewReader(journal))
			if err != nil {
				t.Fatalf("parse journal: %v", err)
			}

			got := failoverSequence(events)
			want, err := os.ReadFile(tc.golden)
			if err != nil {
				t.Fatalf("read %s (regenerate by writing the FAIL output): %v", tc.golden, err)
			}
			if got != strings.TrimSpace(string(want)) {
				t.Errorf("failover sequence mismatch\n got: %s\nwant: %s", got, strings.TrimSpace(string(want)))
			}

			if !strings.Contains(got, "failover:"+tc.flavor) {
				t.Errorf("no failover:%s token in sequence: %s", tc.flavor, got)
			}
			if tc.flavor != "promoted" {
				return
			}
			// The promotion shape: the failover flush exists and lands
			// after the failover itself (one re-traced window apart).
			fo := strings.Index(got, "failover:"+tc.flavor)
			fl := strings.Index(got, "flush:"+obs.FlushFailover)
			if fl < 0 {
				t.Fatalf("no failover flush in sequence: %s", got)
			}
			if fo > fl {
				t.Errorf("failover flush precedes the failover itself: %s", got)
			}
		})
	}
}

// TestFaultBenchReport writes BENCH_fault.json when BENCH_FAULT_OUT
// names a path (`make bench-faults`): the virtual makespan of the PHASE
// workload clean, under perturbation (delay+slow, no crashes), and
// under a lead crash, plus the overhead each adds.
func TestFaultBenchReport(t *testing.T) {
	path := os.Getenv("BENCH_FAULT_OUT")
	if path == "" {
		t.Skip("set BENCH_FAULT_OUT=BENCH_fault.json to write the report")
	}

	clean, _ := runFaulted(t, "PHASE", "", 1, 16)
	perturbed, _ := runFaulted(t, "PHASE", "delay ranks=1-15 p=0.2 jitter=1ms; slow rank=3 factor=2x", 1, 16)
	crashed, journal := runFaulted(t, "PHASE", "crash rank=1 at marker=10", 1, 16)
	kinds := journalKinds(t, journal)

	pctOver := func(d chameleon.Duration) float64 {
		return 100 * (float64(d) - float64(clean.Time)) / float64(clean.Time)
	}
	report := map[string]any{
		"workload":                "PHASE class A, P=16, chameleon tracer",
		"clean_makespan_ns":       int64(clean.Time),
		"perturbed_makespan_ns":   int64(perturbed.Time),
		"perturbed_overhead_pct":  pctOver(perturbed.Time),
		"lead_crash_makespan_ns":  int64(crashed.Time),
		"failover_overhead_pct":   pctOver(crashed.Time),
		"failovers":               kinds[obs.KindFailover],
		"perturbed_reclusterings": perturbed.Reclusterings,
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	t.Logf("wrote %s: clean=%v perturbed=%v crashed=%v", path, clean.Time, perturbed.Time, crashed.Time)
}
