package chameleon_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"chameleon"
	"chameleon/internal/store"
	"chameleon/internal/trace"
)

// benchArchiveTraces produces a mixed fleet of real benchmark traces —
// the payload population a chamd archive would hold for one benchmark
// suite sweep.
func benchArchiveTraces(tb testing.TB) []*trace.File {
	tb.Helper()
	specs := []struct {
		name, class string
		p           int
	}{
		{"BT", "D", 16},
		{"LU", "D", 16},
		{"SP", "D", 16},
		{"CG", "D", 16},
	}
	files := make([]*trace.File, 0, len(specs))
	for _, s := range specs {
		out, err := chameleon.RunBenchmark(s.name, s.class, s.p, chameleon.TracerChameleon, nil)
		if err != nil {
			tb.Fatalf("%s: %v", s.name, err)
		}
		files = append(files, out.Trace)
	}
	return files
}

// BenchmarkStoreIngest prices cold ingest: canonical encode + content
// address + segment write + manifest swap, per trace.
func BenchmarkStoreIngest(b *testing.B) {
	files := benchArchiveTraces(b)
	for _, gz := range []bool{false, true} {
		b.Run(fmt.Sprintf("gzip=%v", gz), func(b *testing.B) {
			a, err := store.Open(b.TempDir(), store.Options{Gzip: gz})
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := files[i%len(files)]
				// Vary the benchmark label so every iteration is a cold
				// ingest, not a dedup hit.
				f.Benchmark = fmt.Sprintf("BENCH-%d", i)
				if _, _, err := a.Ingest(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreDedup prices the warm path: a re-push of an archived
// run stops at the content address.
func BenchmarkStoreDedup(b *testing.B) {
	files := benchArchiveTraces(b)
	a, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	for _, f := range files {
		if _, _, err := a.Ingest(f); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, created, err := a.Ingest(files[i%len(files)]); err != nil || created {
			b.Fatalf("created=%v err=%v", created, err)
		}
	}
}

// BenchmarkStoreGet prices fetch + integrity verification + decode.
func BenchmarkStoreGet(b *testing.B) {
	files := benchArchiveTraces(b)
	a, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	ids := make([]string, len(files))
	for i, f := range files {
		run, _, err := a.Ingest(f)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = run.ID
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreList prices a filtered manifest query over a populated
// archive.
func BenchmarkStoreList(b *testing.B) {
	files := benchArchiveTraces(b)
	a, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 64; i++ {
		f := files[i%len(files)]
		f.Benchmark = fmt.Sprintf("SWEEP-%d", i%8)
		if _, _, err := a.Ingest(f); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if runs, _ := a.List(store.Query{Benchmark: "SWEEP-3", Limit: 16}); len(runs) == 0 {
			b.Fatal("query matched nothing")
		}
	}
}

// TestStoreBenchReport writes BENCH_store.json when BENCH_STORE_OUT
// names a path (`make bench-store`): ingest/dedup/get/list throughput
// on real benchmark traces, plus the storage effect of gzip segments.
func TestStoreBenchReport(t *testing.T) {
	path := os.Getenv("BENCH_STORE_OUT")
	if path == "" {
		t.Skip("set BENCH_STORE_OUT=BENCH_store.json to write the report")
	}

	files := benchArchiveTraces(t)
	var raw, stored int64
	a, err := store.Open(t.TempDir(), store.Options{Gzip: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		run, _, err := a.Ingest(f)
		if err != nil {
			t.Fatal(err)
		}
		raw += run.RawBytes
		stored += run.StoredBytes
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	bench := func(name string, fn func(b *testing.B)) int64 {
		r := testing.Benchmark(fn)
		t.Logf("%s: %d ns/op", name, r.NsPerOp())
		return r.NsPerOp()
	}
	report := map[string]any{
		"workload":          "BT/LU/SP/CG class D traces, 16 ranks",
		"trace_count":       len(files),
		"raw_bytes":         raw,
		"stored_bytes_gzip": stored,
		"gzip_ratio":        float64(stored) / float64(raw),
		"ingest_ns_op":      bench("ingest", benchStoreIngestOnce(files)),
		"dedup_ns_op":       bench("dedup", benchStoreDedupOnce(files)),
		"get_ns_op":         bench("get", benchStoreGetOnce(files)),
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	t.Logf("wrote %s", path)
}

func benchStoreIngestOnce(files []*trace.File) func(b *testing.B) {
	return func(b *testing.B) {
		a, err := store.Open(b.TempDir(), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer a.Close()
		for i := 0; i < b.N; i++ {
			f := files[i%len(files)]
			f.Benchmark = fmt.Sprintf("BENCH-%d", i)
			if _, _, err := a.Ingest(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchStoreDedupOnce(files []*trace.File) func(b *testing.B) {
	return func(b *testing.B) {
		a, err := store.Open(b.TempDir(), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer a.Close()
		for i := range files {
			files[i].Benchmark = fmt.Sprintf("DEDUP-%d", i)
			if _, _, err := a.Ingest(files[i]); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := a.Ingest(files[i%len(files)]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchStoreGetOnce(files []*trace.File) func(b *testing.B) {
	return func(b *testing.B) {
		a, err := store.Open(b.TempDir(), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer a.Close()
		ids := make([]string, len(files))
		for i := range files {
			run, _, err := a.Ingest(files[i])
			if err != nil {
				b.Fatal(err)
			}
			ids[i] = run.ID
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := a.Get(ids[i%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
	}
}
