package chameleon_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"testing"

	"chameleon/internal/mesh"
	"chameleon/internal/store"
	"chameleon/internal/trace"
)

// startBenchFleet brings up n federated chamd peers in-process: each
// gets its own archive and mesh node, all on pre-reserved loopback
// ports so every peer knows the full membership before any of them
// serves. n=1 starts a plain unfederated server — the baseline the
// replication overhead is priced against.
func startBenchFleet(tb testing.TB, n, replicas int) []string {
	tb.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		a, err := store.Open(tb.TempDir(), store.Options{})
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() { a.Close() })
		var node *mesh.Node
		if n > 1 {
			node, err = mesh.NewNode(mesh.Options{Self: urls[i], Peers: urls, Replicas: replicas})
			if err != nil {
				tb.Fatal(err)
			}
		}
		srv := httptest.NewUnstartedServer(store.NewServer(a, store.ServerOptions{Mesh: node}))
		srv.Listener.Close()
		srv.Listener = lns[i]
		srv.Start()
		tb.Cleanup(srv.Close)
	}
	return urls
}

// benchFedIngestOnce prices cold ingest through the HTTP edge: every
// iteration pushes a distinct run (the benchmark label is varied so
// the content address never repeats). With peers>1 each PUT fans out
// to R owners; the ratio against peers=1 is the replication overhead.
func benchFedIngestOnce(files []*trace.File, peers, replicas int, label string) func(b *testing.B) {
	return func(b *testing.B) {
		urls := startBenchFleet(b, peers, replicas)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := files[i%len(files)]
			f.Benchmark = fmt.Sprintf("%s-%d", label, i)
			if _, _, err := store.Push(urls[i%len(urls)], f, false); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchFedDedupOnce prices the warm fan-out: a re-push of an archived
// run stops at the content address on every owner.
func benchFedDedupOnce(files []*trace.File, peers, replicas int) func(b *testing.B) {
	return func(b *testing.B) {
		urls := startBenchFleet(b, peers, replicas)
		for i := range files {
			files[i].Benchmark = fmt.Sprintf("FEDWARM-%d", i)
			if _, _, err := store.Push(urls[0], files[i], false); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := store.Push(urls[i%len(urls)], files[i%len(files)], false); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchFedScatterListOnce prices the scatter-gather listing over a
// populated 3-peer mesh: the queried edge merges every peer's page.
func benchFedScatterListOnce(files []*trace.File, peers, replicas int) func(b *testing.B) {
	return func(b *testing.B) {
		urls := startBenchFleet(b, peers, replicas)
		for i := 0; i < 48; i++ {
			f := files[i%len(files)]
			f.Benchmark = fmt.Sprintf("FEDLIST-%d", i)
			if _, _, err := store.Push(urls[i%len(urls)], f, false); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lr, err := store.FetchRuns(urls[i%len(urls)], "", 100, 0)
			if err != nil {
				b.Fatal(err)
			}
			if lr.Total != 48 {
				b.Fatalf("scatter list sees %d runs, want 48", lr.Total)
			}
		}
	}
}

// TestFedBenchReport writes BENCH_fed.json when BENCH_FED_OUT names a
// path (`make bench-fed`): single-peer vs 3-peer ingest throughput
// through the HTTP edge, the replication overhead ratio that separates
// them, warm fan-out cost, and scatter-gather list latency.
func TestFedBenchReport(t *testing.T) {
	path := os.Getenv("BENCH_FED_OUT")
	if path == "" {
		t.Skip("set BENCH_FED_OUT=BENCH_fed.json to write the report")
	}

	files := benchArchiveTraces(t)
	bench := func(name string, fn func(b *testing.B)) int64 {
		r := testing.Benchmark(fn)
		t.Logf("%s: %d ns/op", name, r.NsPerOp())
		return r.NsPerOp()
	}

	single := bench("single ingest", benchFedIngestOnce(files, 1, 0, "FEDBASE"))
	fed := bench("3-peer ingest", benchFedIngestOnce(files, 3, 2, "FEDMESH"))
	report := map[string]any{
		"workload":               "BT/LU/SP/CG class D traces, 16 ranks, pushed through the HTTP edge",
		"peers":                  3,
		"replicas":               2,
		"single_ingest_ns_op":    single,
		"fed_ingest_ns_op":       fed,
		"replication_overhead":   float64(fed) / float64(single),
		"fed_dedup_ns_op":        bench("3-peer dedup", benchFedDedupOnce(files, 3, 2)),
		"fed_scatter_list_ns_op": bench("3-peer scatter list", benchFedScatterListOnce(files, 3, 2)),
		"fed_single_list_ns_op":  bench("single list", benchFedScatterListOnce(files, 1, 0)),
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	t.Logf("wrote %s", path)
}
